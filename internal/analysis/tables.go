package analysis

import (
	"fmt"
	"sort"
	"strings"

	"rajaperf/internal/gpusim"
	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
	"rajaperf/internal/tma"
)

// Table1 renders the kernel inventory of Table I: every kernel with its
// group, implemented variants, feature annotations, and complexity.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-10s %-44s %-30s %s\n",
		"Kernel", "Group", "Variants", "Features", "Complexity")
	for _, name := range kernels.Names() {
		k, err := kernels.New(name)
		if err != nil {
			continue
		}
		in := k.Info()
		vs := make([]string, 0, len(in.Variants))
		for _, v := range in.Variants {
			vs = append(vs, v.String())
		}
		fs := make([]string, 0, len(in.Features))
		for _, f := range in.Features {
			fs = append(fs, f.String())
		}
		fmt.Fprintf(&b, "%-34s %-10s %-44s %-30s %s\n",
			in.FullName(), in.Group, shortJoin(vs), strings.Join(fs, ","),
			in.Complexity)
	}
	fmt.Fprintf(&b, "\nTotal kernels: %d\n", kernels.Count())
	return b.String()
}

func shortJoin(vs []string) string {
	// Compress the variant list to back-end flags, as Table I does.
	has := map[string]bool{}
	for _, v := range vs {
		has[v] = true
	}
	cols := []struct{ label, base, raja string }{
		{"Seq", "Base_Seq", "RAJA_Seq"},
		{"OMP", "Base_OpenMP", "RAJA_OpenMP"},
		{"GPU", "Base_GPU", "RAJA_GPU"},
	}
	out := make([]string, 0, 3)
	for _, c := range cols {
		mark := ""
		if has[c.base] {
			mark += "B"
		}
		if has[c.raja] {
			mark += "R"
		}
		if mark != "" {
			out = append(out, c.label+":"+mark)
		}
	}
	return strings.Join(out, " ")
}

// Table2Row is one machine row of Table II with modeled achieved rates.
type Table2Row struct {
	Machine          *machine.Machine
	AchievedTFLOPS   float64 // Basic_MAT_MAT_SHARED probe
	AchievedBWTBs    float64 // Stream_TRIAD probe
	FlopsPctExpected float64
	BWPctExpected    float64
}

// Table2 characterizes the four systems with the paper's probe kernels:
// achieved FLOPS via Basic_MAT_MAT_SHARED and achieved bandwidth via
// Stream_TRIAD, both evaluated through the hardware models.
func (s *Session) Table2() ([]Table2Row, error) {
	rows := make([]Table2Row, 0, 4)
	for _, m := range machine.Paper() {
		p, err := s.Profile(m)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Machine: m}
		if r := p.Find("Basic_MAT_MAT_SHARED"); r != nil {
			row.AchievedTFLOPS = r.Metrics["GFLOPS"] / 1000
		}
		if r := p.Find("Stream_TRIAD"); r != nil {
			row.AchievedBWTBs = r.Metrics["GB/s"] / 1000
		}
		row.FlopsPctExpected = 100 * row.AchievedTFLOPS / m.PeakTFLOPSNode
		row.BWPctExpected = 100 * row.AchievedBWTBs / m.PeakBWTBsNode
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-22s %6s %7s %9s %7s | %6s %7s %9s %7s\n",
		"Shorthand", "Architecture", "units", "TF/unit", "TF(probe)", "%exp",
		"TB/s/u", "TB/s", "TB(probe)", "%exp")
	for _, r := range rows {
		m := r.Machine
		fmt.Fprintf(&b, "%-12s %-22s %6d %7.1f %9.2f %7.1f | %6.1f %7.1f %9.2f %7.1f\n",
			m.Shorthand, m.Arch, m.UnitsPerNode,
			m.PeakTFLOPSUnit, r.AchievedTFLOPS, r.FlopsPctExpected,
			m.PeakBWTBsUnit, m.PeakBWTBsNode, r.AchievedBWTBs, r.BWPctExpected)
	}
	return b.String()
}

// Table3 renders the run parameters of Table III: variant, tuning, rank
// count, and per-process size for each system at the given node size.
func Table3(sizePerNode int) string {
	if sizePerNode <= 0 {
		sizePerNode = 32_000_000
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-10s %6s %14s %14s\n",
		"System", "Variant", "Tuning", "Ranks", "Size/Process", "Size/Node")
	for _, m := range machine.Paper() {
		variant := "RAJA_Seq"
		tuning := "default"
		if m.Kind == machine.GPU {
			variant = "RAJA_" + string(m.Backend)
			tuning = m.Tuning
		}
		fmt.Fprintf(&b, "%-12s %-12s %-10s %6d %14d %14d\n",
			m.Shorthand, variant, tuning, m.Ranks, sizePerNode/m.Ranks, sizePerNode)
	}
	return b.String()
}

// Table4 renders the Nsight-Compute metric set used for the instruction
// roofline (Table IV).
func Table4() string {
	var b strings.Builder
	b.WriteString("Instruction roofline metrics (NVIDIA Nsight Compute):\n")
	for _, m := range gpusim.MetricNames() {
		fmt.Fprintf(&b, "  %s\n", m)
	}
	return b.String()
}

// Fig1Row is one kernel's analytic metrics normalized by problem size.
type Fig1Row struct {
	Kernel        string
	BytesReadPer  float64
	BytesWritePer float64
	FlopsPer      float64
	FlopsPerByte  float64
}

// Fig1 computes the analytic metrics of Fig 1 for every kernel at the
// given per-rank problem size, normalized per problem-size unit.
func Fig1(size int) []Fig1Row {
	if size <= 0 {
		size = 100_000
	}
	rows := make([]Fig1Row, 0, kernels.Count())
	for _, name := range kernels.Names() {
		k, err := kernels.New(name)
		if err != nil {
			continue
		}
		k.SetUp(kernels.RunParams{Size: size})
		m := k.Metrics()
		n := float64(size)
		rows = append(rows, Fig1Row{
			Kernel:        name,
			BytesReadPer:  m.BytesRead / n,
			BytesWritePer: m.BytesWritten / n,
			FlopsPer:      m.Flops / n,
			FlopsPerByte:  m.FlopsPerByte(),
		})
		k.TearDown()
	}
	return rows
}

// RenderFig1 formats the Fig 1 analytic-metrics table.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %12s %12s %12s\n",
		"Kernel", "BytesRead/it", "BytesWrit/it", "Flops/it", "Flops/Byte")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %12.2f %12.2f %12.2f %12.4f\n",
			r.Kernel, r.BytesReadPer, r.BytesWritePer, r.FlopsPer, r.FlopsPerByte)
	}
	return b.String()
}

// Fig2 renders the TMA hierarchy diagram of Fig 2 as an indented tree.
func Fig2() string {
	var b strings.Builder
	var render func(n tma.Node, depth int)
	render = func(n tma.Node, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Name)
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	render(tma.Hierarchy(), 0)
	return b.String()
}

// sortedKeys returns map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
