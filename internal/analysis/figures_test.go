package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rajaperf/internal/machine"
)

func TestWriteFigures(t *testing.T) {
	dir := t.TempDir()
	paths, err := session.WriteFigures(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 2 top-down + 3 roofline levels + 1 dendrogram + 4 bw/flops panels.
	if len(paths) != 10 {
		t.Fatalf("wrote %d figures, want 10: %v", len(paths), paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
			t.Errorf("%s is not a complete SVG", p)
		}
		if len(s) < 2000 {
			t.Errorf("%s suspiciously small (%d bytes)", p, len(s))
		}
	}
	// The top-down chart must mention kernels and categories.
	ddr, _ := os.ReadFile(filepath.Join(dir, "fig3_topdown_SPR-DDR.svg"))
	for _, frag := range []string{"Stream_TRIAD", "memory bound", "retiring"} {
		if !strings.Contains(string(ddr), frag) {
			t.Errorf("fig3 SVG missing %q", frag)
		}
	}
}

func TestTuningSweep(t *testing.T) {
	data, err := session.TuningSweep(machine.P9V100(), []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) < 50 {
		t.Fatalf("tuning sweep covered %d kernels", len(data.Rows))
	}
	hist := data.BestTuningHistogram()
	total := 0
	for block, n := range hist {
		if block != 64 && block != 256 {
			t.Errorf("unexpected best block %d", block)
		}
		total += n
	}
	if total != len(data.Rows) {
		t.Errorf("histogram covers %d of %d kernels", total, len(data.Rows))
	}
	for _, r := range data.Rows {
		if r.Spread < 1 {
			t.Errorf("%s spread = %v < 1", r.Kernel, r.Spread)
		}
		for _, block := range data.Blocks {
			if r.Times[block] <= 0 {
				t.Errorf("%s missing time for block %d", r.Kernel, block)
			}
		}
	}
	if !strings.Contains(data.Render(), "block_64") {
		t.Error("render missing block column")
	}
	if _, err := session.TuningSweep(machine.SPRDDR(), nil); err == nil {
		t.Error("tuning sweep must reject CPU machines")
	}
}
