package analysis

import (
	"fmt"
	"strings"

	"rajaperf/internal/machine"
)

// relErr is the relative error of got against want.
func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	if want == 0 {
		return d
	}
	return d / want
}

// Summary evaluates the paper's headline claims against the modeled data
// and reports each as a PASS/FAIL line — the Sec VII conclusions, executable.
func (s *Session) Summary() (string, error) {
	var b strings.Builder
	claim := func(ok bool, text string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s\n", status, text)
	}

	// Claim 1 (Table II consistency): probes recover the calibrated
	// achieved rates within 25%.
	rows, err := s.Table2()
	if err != nil {
		return "", err
	}
	okT2 := true
	for _, r := range rows {
		m := r.Machine
		if relErr(r.AchievedTFLOPS, m.AchievedTFLOPSNode()) > 0.25 ||
			relErr(r.AchievedBWTBs, m.AchievedBWTBsNode()) > 0.25 {
			okT2 = false
		}
	}
	claim(okT2, "probe kernels recover each machine's achieved FLOPS and bandwidth (Table II)")

	// Claim 2: the most memory-bound cluster gains the most on every
	// higher-bandwidth machine (Sec IV / Fig 7-8).
	res, err := s.Cluster(0)
	if err != nil {
		return "", err
	}
	mem := res.MostMemoryBoundCluster()
	ok2 := true
	for _, st := range res.Stats {
		if st.ID == mem || len(st.Kernels) == 0 {
			continue
		}
		ms := res.Stats[mem]
		if st.SpeedupHBM > ms.SpeedupHBM || st.SpeedupV100 > ms.SpeedupV100 ||
			st.SpeedupMI250X > ms.SpeedupMI250X {
			ok2 = false
		}
	}
	claim(ok2, fmt.Sprintf(
		"the most memory-bound cluster shows the largest gains on all HBM machines "+
			"(%.1fx HBM, %.1fx V100, %.1fx MI250X)",
		res.Stats[mem].SpeedupHBM, res.Stats[mem].SpeedupV100, res.Stats[mem].SpeedupMI250X))

	// Claim 3: HBM relieves the memory-bound metric (Fig 3 vs 4).
	ddrRows, err := s.Topdown(machine.SPRDDR())
	if err != nil {
		return "", err
	}
	hbmRows, err := s.Topdown(machine.SPRHBM())
	if err != nil {
		return "", err
	}
	hbmMem := map[string]float64{}
	for _, r := range hbmRows {
		hbmMem[r.Kernel] = r.Metrics.MemoryBound
	}
	relieved, membound := 0, 0
	for _, r := range ddrRows {
		if r.Metrics.MemoryBound > 0.5 {
			membound++
			if hbmMem[r.Kernel] < r.Metrics.MemoryBound {
				relieved++
			}
		}
	}
	// The paper's own count is 40 of 67 improving (Sec V-A); HBM trades
	// latency for bandwidth, so latency-bound kernels don't improve.
	claim(relieved*4 >= membound*3, fmt.Sprintf(
		"HBM lowers the memory-bound fraction of %d/%d strongly memory-bound kernels (paper: 40/67 improve)", relieved, membound))

	// Claim 4: non-memory-bound kernels gain less from HBM but still
	// benefit from higher-FLOPS GPUs (Sec V-D / abstract).
	data, err := s.Fig9()
	if err != nil {
		return "", err
	}
	ok4 := true
	count4 := 0
	for _, r := range data.Rows {
		if r.MemoryBound < 0.25 && r.SpeedupV100 > 1.2 {
			count4++
			if r.SpeedupHBM > 1.4 {
				ok4 = false
			}
		}
	}
	claim(ok4 && count4 > 5, fmt.Sprintf(
		"%d non-memory-bound kernels gain on GPUs yet not on SPR-HBM", count4))

	// Claim 5: EDGE3D is the extreme Fig 9 outlier (paper: 118.6x).
	var edge, best float64
	bestName := ""
	for _, r := range data.Rows {
		if r.Kernel == "Apps_EDGE3D" {
			edge = r.SpeedupMI250X
		}
		if r.SpeedupMI250X > best {
			best, bestName = r.SpeedupMI250X, r.Kernel
		}
	}
	claim(bestName == "Apps_EDGE3D" && edge > 40, fmt.Sprintf(
		"Apps_EDGE3D is the MI250X outlier at %.1fx (paper: 118.6x)", edge))

	return b.String(), nil
}
