package fabric

// Self-healing acceptance: seeded network chaos, worker.crash events,
// respawn supervision, hedged redispatch, and graceful drain. The
// headline test is the DESIGN.md chaos drill — a 4-worker campaign under
// every net.* fault plus two worker crashes must converge to the same
// normalized profiles as a fault-free single-process run, with every
// crashed worker respawned and full fleet capacity restored.

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"rajaperf/internal/caliper"
	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
	"rajaperf/internal/telemetry"
)

// TestChaosConvergence is the chaos drill: every transport fault armed
// at once (delay, drop, dup, corrupt) on both directions of every
// connection, plus two worker.crash events — and the campaign must
// still produce exactly the fault-free result. Run under -race in CI.
func TestChaosConvergence(t *testing.T) {
	plan := testPlan()
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// The fault-free oracle.
	soloDir := t.TempDir()
	soloRes, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir: soloDir, Workers: 1, Metrics: new(telemetry.Registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	if soloRes.Done != len(specs) {
		t.Fatalf("solo campaign: %d done, want %d", soloRes.Done, len(specs))
	}

	// The drill: the same fault spec drives the coordinator's chaos
	// transport + worker.crash decisions and, forwarded through the
	// welcome frame, each worker's own chaos transport.
	const faultSpec = "net.delay:0.05,net.drop:0.05,net.dup:0.05,net.corrupt:0.02,worker.crash:2,seed=11"
	inj, err := resilience.ParseFaults(faultSpec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{
		Workers: 4,
		Worker: WorkerConfig{OutDir: dir, Faults: faultSpec,
			HeartbeatEvery: 100 * time.Millisecond},
		Campaign:    dir,
		Metrics:     new(telemetry.Registry),
		Chaos:       inj,
		ResendEvery: 100 * time.Millisecond,
		Respawn: resilience.Policy{MaxAttempts: 10,
			BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	f := startFleet(t, cfg)
	res, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir: dir, Workers: 4, Executor: f.coord,
		Campaign: dir, Metrics: cfg.Metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != len(specs) || res.Failed != 0 {
		t.Fatalf("chaos campaign did not converge: %d done, %d failed of %d",
			res.Done, res.Failed, len(specs))
	}

	// Every crashed worker respawned (worker.crash:2 guarantees at least
	// two deaths; corrupt-frame teardowns may add more) and the fleet
	// back at full strength.
	if got := f.coord.Respawns(); got < 2 {
		t.Errorf("respawns = %d, want >= 2 (worker.crash:2 killed two workers)", got)
	}
	deadline := time.Now().Add(15 * time.Second)
	for f.coord.LiveWorkers() < cfg.Workers {
		if time.Now().After(deadline) {
			t.Fatalf("fleet capacity not restored: %d of %d workers live",
				f.coord.LiveWorkers(), cfg.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}
	f.stop()
	if _, _, err := campaign.FinalizeShards(dir); err != nil {
		t.Fatal(err)
	}

	// Fault-free equivalence: same manifest, same normalized profiles.
	soloMan, err := campaign.LoadManifest(soloDir)
	if err != nil {
		t.Fatal(err)
	}
	chaosMan, err := campaign.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(soloMan.Entries) != len(chaosMan.Entries) {
		t.Fatalf("manifest sizes differ: solo %d, chaos %d",
			len(soloMan.Entries), len(chaosMan.Entries))
	}
	for id, se := range soloMan.Entries {
		ce, ok := chaosMan.Entries[id]
		if !ok {
			t.Fatalf("chaos manifest missing %s", id)
		}
		if se.Status != ce.Status || se.File != ce.File {
			t.Fatalf("%s: solo %s/%s vs chaos %s/%s", id, se.Status, se.File, ce.Status, ce.File)
		}
		sp, err := caliper.ReadFile(soloDir + "/" + se.File)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := caliper.ReadFile(dir + "/" + ce.File)
		if err != nil {
			t.Fatal(err)
		}
		sRecs, sMeta := normalize(sp)
		cRecs, cMeta := normalize(cp)
		if !reflect.DeepEqual(sRecs, cRecs) {
			t.Errorf("%s: records differ between fault-free and chaos runs", id)
		}
		if !reflect.DeepEqual(sMeta, cMeta) {
			t.Errorf("%s: metadata differs between fault-free and chaos runs:\n%v\n%v",
				id, sMeta, cMeta)
		}
	}
}

// TestWorkerRespawn: SIGKILL the only worker; supervision must respawn
// it within the restart budget, and the respawned worker must actually
// execute work.
func TestWorkerRespawn(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:  1,
		Worker:   WorkerConfig{OutDir: dir},
		Campaign: dir,
		Metrics:  new(telemetry.Registry),
		Respawn: resilience.Policy{MaxAttempts: 5,
			BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	f := startFleet(t, cfg)

	f.mu.Lock()
	victim := f.cmds[0].Process
	f.mu.Unlock()
	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for f.coord.Respawns() < 1 || f.coord.LiveWorkers() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no respawn within 15s: respawns=%d live=%d",
				f.coord.Respawns(), f.coord.LiveWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}

	specs, err := testPlan().Specs()
	if err != nil {
		t.Fatal(err)
	}
	sr := f.coord.Submit(context.Background(), specs[0])
	if sr.Status != campaign.StatusDone {
		t.Fatalf("respawned worker: %s result %s (%v)", specs[0].ID(), sr.Status, sr.Err)
	}
	f.stop()
}

// TestHedgedRedispatch: SIGSTOP the worker holding a spec once the
// latency estimator has samples; the sweeper must hedge the spec onto
// the idle worker and resolve it from the hedge's result.
func TestHedgedRedispatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:     2,
		Worker:      WorkerConfig{OutDir: dir},
		Campaign:    dir,
		Metrics:     new(telemetry.Registry),
		Assign:      func(string, int) int { return 0 }, // everything homes to shard 0
		HedgeFactor: 1,
		ResendEvery: 50 * time.Millisecond,
		WorkerStall: 30 * time.Second, // the stall watchdog must NOT beat the hedge
	}
	f := startFleet(t, cfg)
	specs, err := testPlan().Specs()
	if err != nil {
		t.Fatal(err)
	}

	// Three sequential submits land on worker 0 (free, owns the home
	// queue) and seed the p95 estimator.
	ctx := context.Background()
	for _, s := range specs[:3] {
		if sr := f.coord.Submit(ctx, s); sr.Status != campaign.StatusDone {
			t.Fatalf("warmup %s: %s (%v)", s.ID(), sr.Status, sr.Err)
		}
	}

	f.mu.Lock()
	w0 := f.cmds[0].Process
	f.mu.Unlock()
	if err := w0.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	defer w0.Signal(syscall.SIGCONT)

	// The next spec dispatches to the stopped worker 0; worker 1 is idle,
	// so the hedge must win.
	done := make(chan campaign.SpecResult, 1)
	go func() { done <- f.coord.Submit(ctx, specs[3]) }()
	select {
	case sr := <-done:
		if sr.Status != campaign.StatusDone {
			t.Fatalf("hedged spec: %s (%v)", sr.Status, sr.Err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("hedged spec never resolved")
	}
	if got := f.coord.Hedges(); got < 1 {
		t.Errorf("hedges = %d, want >= 1 (primary holder was SIGSTOP'd)", got)
	}
	w0.Signal(syscall.SIGCONT)
	f.stop()
}

// TestDrainFinishesInFlight: a drain landing while every spec is in
// flight lets them run to completion (no work lost, no work canceled),
// refuses new submissions, and leaves a directory a resume re-runs
// nothing over.
func TestDrainFinishesInFlight(t *testing.T) {
	plan := testPlan()
	plan.Machines = []string{"SPR-DDR"}
	plan.Variants = []string{"RAJA_Seq"}
	plan.Kernels = []string{"Stream_TRIAD"}
	plan.Sizes = []int{500_000, 750_000}
	plan.Reps = 20_000 // chunky: provably mid-flight when the drain lands
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("want a 2-spec plan, got %d", len(specs))
	}

	dir := t.TempDir()
	bus := new(telemetry.Bus)
	cfg := Config{Workers: 2, Worker: WorkerConfig{OutDir: dir},
		Campaign: dir, Metrics: new(telemetry.Registry), Bus: bus}
	f := startFleet(t, cfg)

	running := make(chan struct{}, 8)
	sub := bus.Subscribe(64, 0)
	go func() {
		for ev := range sub.C {
			if ev.Type == "run" && ev.Status == "running" {
				running <- struct{}{}
			}
		}
	}()

	resCh := make(chan *campaign.Result, 1)
	go func() {
		res, err := campaign.Run(context.Background(), plan, campaign.Options{
			OutDir: dir, Workers: 2, Executor: f.coord,
			Campaign: dir, Metrics: cfg.Metrics, Bus: bus,
		})
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-running:
		case <-time.After(20 * time.Second):
			t.Fatal("specs never started")
		}
	}
	time.Sleep(100 * time.Millisecond) // both Submits reach the fleet

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var dr campaign.Drainer = f.coord
	if err := dr.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-resCh
	sub.Close()
	if res == nil {
		t.Fatal("campaign returned no result")
	}
	if res.Done != len(specs) {
		t.Fatalf("drain lost in-flight work: %d done of %d", res.Done, len(specs))
	}

	// Post-drain submissions are refused at a spec boundary.
	if sr := f.coord.Submit(context.Background(), specs[0]); sr.Status != campaign.StatusCanceled {
		t.Errorf("post-drain submit: %s, want canceled", sr.Status)
	}
	f.stop()
	if _, _, err := campaign.FinalizeShards(dir); err != nil {
		t.Fatal(err)
	}

	// The drained directory resumes with zero re-runs.
	res2, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir: dir, Workers: 2, Resume: true, Metrics: new(telemetry.Registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != len(specs) || res2.Done != 0 {
		t.Fatalf("resume after drain re-ran work: %d resumed, %d done, want %d/0",
			res2.Resumed, res2.Done, len(specs))
	}
}

// TestDrainCancelsQueued: with one worker and three outstanding specs,
// a drain finishes the dispatched spec, cancels the two still queued,
// and a resume re-runs exactly the canceled pair.
func TestDrainCancelsQueued(t *testing.T) {
	plan := testPlan()
	plan.Machines = []string{"SPR-DDR"}
	plan.Variants = []string{"RAJA_Seq"}
	plan.Kernels = []string{"Stream_TRIAD"}
	plan.Sizes = []int{500_000, 750_000, 1_000_000}
	plan.Reps = 20_000
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("want a 3-spec plan, got %d", len(specs))
	}

	dir := t.TempDir()
	bus := new(telemetry.Bus)
	cfg := Config{Workers: 1, Worker: WorkerConfig{OutDir: dir},
		Campaign: dir, Metrics: new(telemetry.Registry), Bus: bus}
	f := startFleet(t, cfg)

	running := make(chan struct{}, 8)
	sub := bus.Subscribe(64, 0)
	go func() {
		for ev := range sub.C {
			if ev.Type == "run" && ev.Status == "running" {
				running <- struct{}{}
			}
		}
	}()
	resCh := make(chan *campaign.Result, 1)
	go func() {
		res, err := campaign.Run(context.Background(), plan, campaign.Options{
			OutDir: dir, Workers: 3, Executor: f.coord,
			Campaign: dir, Metrics: cfg.Metrics, Bus: bus,
		})
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	for i := 0; i < 3; i++ {
		select {
		case <-running:
		case <-time.After(20 * time.Second):
			t.Fatal("specs never started")
		}
	}
	time.Sleep(20 * time.Millisecond) // the first spec dispatches; the rest queue

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.coord.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-resCh
	sub.Close()
	if res == nil {
		t.Fatal("campaign returned no result")
	}
	canceled := 0
	for _, sr := range res.Specs {
		if sr.Status == campaign.StatusCanceled {
			canceled++
		}
	}
	// The exact split depends on how many specs finished before the drain
	// landed; the invariants do not: at least one spec was still queued
	// (canceled), the in-flight one finished, and nothing failed.
	if canceled < 1 || res.Done < 1 || res.Done+canceled != len(specs) {
		t.Fatalf("drain split wrong: %d done, %d canceled of %d", res.Done, canceled, len(specs))
	}
	f.stop()
	if _, _, err := campaign.FinalizeShards(dir); err != nil {
		t.Fatal(err)
	}

	// Resume re-runs exactly the canceled set — the drained work is
	// durable, the undispatched work is not.
	res2, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir: dir, Workers: 1, Resume: true, Metrics: new(telemetry.Registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != res.Done || res2.Done != canceled {
		t.Fatalf("resume after partial drain: %d resumed, %d done, want %d/%d",
			res2.Resumed, res2.Done, res.Done, canceled)
	}
}

// TestHandshakeReject: a hello speaking the wrong protocol version or
// naming a foreign campaign is turned away at admission — connection
// closed, rejection counted, no welcome.
func TestHandshakeReject(t *testing.T) {
	reg := new(telemetry.Registry)
	coord, err := NewCoordinator(Config{Workers: 1, Campaign: "camp-a", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	bad := []*frame{
		{Type: frameHello, Shard: 0, Proto: protoVersion - 1, Campaign: "camp-a"},
		{Type: frameHello, Shard: 0, Proto: protoVersion, Campaign: "camp-b"},
	}
	for i, hello := range bad {
		conn, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, hello); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := readFrame(bufio.NewReader(conn)); err == nil {
			t.Fatalf("hello %d (proto %d, campaign %q) was welcomed",
				i, hello.Proto, hello.Campaign)
		}
		conn.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("fabric.handshake.rejects").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("handshake rejects = %d, want 2",
				reg.Counter("fabric.handshake.rejects").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerRejectsForeignCoordinator: the handshake verifies both
// ways — a worker refuses a welcome naming another campaign or a
// different protocol version.
func TestWorkerRejectsForeignCoordinator(t *testing.T) {
	cases := []struct {
		name    string
		welcome frame
		wantErr string
	}{
		{"foreign campaign",
			frame{Type: frameWelcome, Proto: protoVersion, Campaign: "other", Config: &WorkerConfig{}},
			"campaign"},
		{"protocol skew",
			frame{Type: frameWelcome, Proto: protoVersion + 1, Campaign: "mine", Config: &WorkerConfig{}},
			"protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := readFrame(br); err != nil {
					return
				}
				writeFrame(conn, &tc.welcome)
				readFrame(br) // hold the conn until the worker hangs up
			}()
			err = RunWorker(context.Background(), ln.Addr().String(), 0, "mine")
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("worker accepted a bad welcome: err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

// TestChaosWriter pins the transport fault semantics frame-by-frame:
// drop blackholes the whole frame while reporting success, corrupt
// flips exactly one bit, dup doubles the frame, and an unarmed injector
// passes writes through unwrapped.
func TestChaosWriter(t *testing.T) {
	payload := []byte("0123456789abcdef")

	t.Run("unwrapped when no net faults", func(t *testing.T) {
		inj, err := resilience.ParseFaults("kernel.panic:1")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if w := wrapChaos(&buf, inj); w != &buf {
			t.Error("writer wrapped despite no armed net.* point")
		}
		if w := wrapChaos(&buf, nil); w != &buf {
			t.Error("writer wrapped despite nil injector")
		}
	})
	t.Run("drop", func(t *testing.T) {
		inj, err := resilience.ParseFaults("net.drop:1.0,seed=1")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := wrapChaos(&buf, inj).Write(payload)
		if err != nil || n != len(payload) {
			t.Fatalf("drop must report success: n=%d err=%v", n, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("dropped frame reached the wire: %d bytes", buf.Len())
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		inj, err := resilience.ParseFaults("net.corrupt:1.0,seed=1")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := wrapChaos(&buf, inj).Write(payload); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(buf.Bytes(), payload) {
			t.Fatal("corrupt left the frame intact")
		}
		diff := 0
		for i := range payload {
			if buf.Bytes()[i] != payload[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("corrupt changed %d bytes, want exactly 1", diff)
		}
		if !bytes.Equal(payload, []byte("0123456789abcdef")) {
			t.Fatal("corrupt mutated the caller's buffer")
		}
	})
	t.Run("dup", func(t *testing.T) {
		inj, err := resilience.ParseFaults("net.dup:1.0,seed=1")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := wrapChaos(&buf, inj).Write(payload); err != nil {
			t.Fatal(err)
		}
		if want := append(append([]byte(nil), payload...), payload...); !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("dup wrote %d bytes, want the frame twice (%d)", buf.Len(), len(want))
		}
	})
}
