package fabric

// The worker: one process owning one shard of a distributed campaign.
// It dials the coordinator, rendezvouses with hello/welcome — verifying
// protocol version and campaign identity both ways — and then runs each
// assigned spec behind the same campaign.LocalExecutor the in-process
// backend uses — retry loop, per-attempt pool, run watchdogs, profile
// write — so a spec's execution semantics do not depend on which backend
// ran it.
//
// Durability ordering per spec: the profile reaches the shared OutDir
// (inside LocalExecutor.Submit), then the outcome is appended and
// fsynced to this shard's WAL, and only then does the result frame go
// back to the coordinator. A worker killed between the WAL append and
// the frame has already made the outcome durable: recovery merges the
// shard WAL and the spec is not re-run. A respawned worker reopens the
// same WAL in append mode, so supervision inherits everything its
// predecessor completed.
//
// Reliability over a lossy (chaos-injected) transport: the worker acks
// every assign and deduplicates repeats by spec ID, and it resends each
// result until the coordinator acks it — so a blackholed frame in either
// direction costs one resend interval, never a hang. A cancel frame
// aborts the named spec (the losing half of a hedged redispatch); an
// assign carrying the Crash flag is the worker.crash fault landing, and
// the process exits immediately, exactly as a real crash would.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
)

// crashExit is the worker.crash exit code — distinguishable in the
// coordinator's reaper from an ordinary worker error.
const crashExit = 3

// RunWorker runs one worker process's session: dial addr, announce
// shard and campaign identity, execute assigned specs until the
// coordinator says bye (clean return) or the connection breaks (error —
// typically the coordinator died, and this process should exit with it).
func RunWorker(ctx context.Context, addr string, shard int, campaignID string) error {
	if shard < 0 {
		return fmt.Errorf("fabric: negative shard %d", shard)
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("fabric: dial coordinator: %w", err)
	}
	defer conn.Close()

	var wmu sync.Mutex
	var out io.Writer = conn // chaos-wrapped after the handshake
	send := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(out, f)
	}
	sendRaw := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, f)
	}
	if err := send(&frame{Type: frameHello, Shard: shard, PID: os.Getpid(),
		Proto: protoVersion, Campaign: campaignID}); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("fabric: waiting for welcome: %w", err)
	}
	if f.Type != frameWelcome || f.Config == nil {
		return fmt.Errorf("fabric: expected welcome, got %q", f.Type)
	}
	if f.Proto != protoVersion {
		return fmt.Errorf("fabric: coordinator speaks protocol v%d, this worker v%d", f.Proto, protoVersion)
	}
	if f.Campaign != campaignID {
		return fmt.Errorf("fabric: coordinator runs campaign %q, this worker belongs to %q", f.Campaign, campaignID)
	}
	conn.SetReadDeadline(time.Time{})
	cfg := *f.Config

	inj, err := resilience.ParseFaults(cfg.Faults)
	if err != nil {
		return fmt.Errorf("fabric: worker faults: %w", err)
	}
	// Arm the chaos transport only now: the handshake has a deadline but
	// no retransmit layer (mirrors the coordinator side).
	wmu.Lock()
	out = wrapChaos(conn, inj)
	wmu.Unlock()

	exec := campaign.NewLocalExecutor(campaign.Options{
		OutDir:       cfg.OutDir,
		Workers:      1, // one spec in flight per worker: the fabric's capacity discipline
		PoolLanes:    cfg.PoolLanes,
		Retry:        resilience.Policy{MaxAttempts: cfg.MaxAttempts, BaseDelay: cfg.BaseDelay, MaxDelay: cfg.MaxDelay},
		RunTimeout:   cfg.RunTimeout,
		StallTimeout: cfg.StallTimeout,
		Grace:        cfg.Grace,
		Faults:       inj,
	})
	var wal *campaign.ShardJournal
	if cfg.OutDir != "" {
		if wal, err = campaign.OpenShardJournal(cfg.OutDir, shard); err != nil {
			return err
		}
		defer wal.Close()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Session state shared by the read loop, the run goroutine, and the
	// resend ticker.
	st := struct {
		sync.Mutex
		seen      map[string]bool        // assigns accepted this session (dedup)
		canceled  map[string]bool        // cancel received before/while running
		unacked   map[string]*wireResult // results awaiting coordinator ack
		curID     string                 // spec currently executing
		curCancel context.CancelFunc
	}{
		seen:     map[string]bool{},
		canceled: map[string]bool{},
		unacked:  map[string]*wireResult{},
	}

	// Heartbeats + result resends: one timer goroutine. The heartbeat is
	// a monotone counter asserting "this process is alive and its socket
	// works" — per-run liveness is the local executor's watchdog's job,
	// so a long-legitimate kernel does not get its worker declared dead.
	// The resend sweep retransmits any result the coordinator has not
	// acked, recovering frames the chaos transport blackholed.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		var beat int64
		ticks := 0
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				beat++
				if send(&frame{Type: frameHeartbeat, Beat: beat}) != nil {
					return
				}
				ticks++
				if ticks%2 != 0 {
					continue // resend at half the heartbeat rate
				}
				st.Lock()
				var rs []*wireResult
				for _, r := range st.unacked {
					rs = append(rs, r)
				}
				st.Unlock()
				for _, r := range rs {
					if send(&frame{Type: frameResult, Result: r}) != nil {
						return
					}
				}
			}
		}
	}()

	// Assigned specs execute on a separate goroutine so the read loop
	// stays responsive to cancel and bye while a run is in flight. The
	// coordinator's capacity discipline sends at most one live assign at
	// a time (duplicates are deduped before enqueue), so the buffer never
	// fills.
	assigns := make(chan campaign.RunSpec, 4)
	runErr := make(chan error, 1)
	go func() {
		defer close(runErr)
		for spec := range assigns {
			id := spec.ID()
			st.Lock()
			if st.canceled[id] {
				st.Unlock()
				continue // canceled while queued: the winner already resolved it
			}
			rctx, rcancel := context.WithCancel(runCtx)
			st.curID, st.curCancel = id, rcancel
			st.Unlock()
			sr := exec.Submit(rctx, spec)
			rcancel()
			st.Lock()
			st.curID, st.curCancel = "", nil
			wasCanceled := st.canceled[id]
			st.Unlock()
			if sr.Status != campaign.StatusCanceled {
				if err := wal.Append(id, shardEntry(sr)); err != nil {
					runErr <- err
					return
				}
			} else if wasCanceled {
				// A hedge loser: the winner's outcome is authoritative, and
				// the coordinator has already moved on. Report nothing.
				continue
			}
			wr := toWire(sr)
			st.Lock()
			st.unacked[id] = wr
			st.Unlock()
			if err := send(&frame{Type: frameResult, Result: wr}); err != nil {
				runErr <- err
				return
			}
		}
	}()

	for {
		f, err := readFrame(br)
		if err != nil {
			close(assigns)
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("fabric: coordinator connection: %w", err)
		}
		switch f.Type {
		case frameAssign:
			if f.Spec == nil {
				continue
			}
			if f.Crash {
				// The worker.crash fault landing: die exactly as a real
				// crash would — no ack, no WAL entry, no goodbye. The
				// coordinator redispatches the spec and respawns the shard.
				os.Exit(crashExit)
			}
			id := f.Spec.ID()
			st.Lock()
			dup := st.seen[id]
			st.seen[id] = true
			done := st.unacked[id]
			st.Unlock()
			// Always (re-)ack: the previous ack may have been blackholed.
			if err := send(&frame{Type: frameAck, ID: id}); err != nil {
				continue // the read loop will see the broken conn
			}
			if dup {
				if done != nil {
					// Completed but the result (or its ack) was lost: resend
					// now rather than waiting for the sweep.
					send(&frame{Type: frameResult, Result: done})
				}
				continue
			}
			select {
			case assigns <- *f.Spec:
			case err := <-runErr:
				close(assigns)
				return fmt.Errorf("fabric: worker shard%d: %w", shard, err)
			}
		case frameAck:
			st.Lock()
			delete(st.unacked, f.ID)
			st.Unlock()
		case frameCancel:
			st.Lock()
			st.canceled[f.ID] = true
			if st.curID == f.ID && st.curCancel != nil {
				st.curCancel()
			}
			st.Unlock()
		case frameBye:
			close(assigns)
			if err := <-runErr; err != nil {
				return fmt.Errorf("fabric: worker shard%d: %w", shard, err)
			}
			// Echo bye (chaos-free: shutdown frames must not wedge the
			// drill's own teardown) so the coordinator closes the socket at
			// a frame boundary.
			sendRaw(&frame{Type: frameBye, Shard: shard})
			return nil
		}
	}
}

// shardEntry builds the WAL record for one terminal outcome — the same
// shape the orchestrator journals to the root WAL, so the merge layer
// reconciles them field by field.
func shardEntry(sr campaign.SpecResult) campaign.ManifestEntry {
	e := campaign.ManifestEntry{
		Spec:     sr.Spec,
		Status:   sr.Status,
		WallSec:  sr.Elapsed.Seconds(),
		Attempts: sr.Attempts,
	}
	if sr.Path != "" {
		e.File = filepath.Base(sr.Path)
	}
	if sr.Err != nil {
		e.Error = sr.Err.Error()
	}
	return e
}
