package fabric

// The worker: one process owning one shard of a distributed campaign.
// It dials the coordinator, rendezvouses with hello/welcome, and then
// runs each assigned spec behind the same campaign.LocalExecutor the
// in-process backend uses — retry loop, per-attempt pool, run
// watchdogs, profile write — so a spec's execution semantics do not
// depend on which backend ran it.
//
// Durability ordering per spec: the profile reaches the shared OutDir
// (inside LocalExecutor.Submit), then the outcome is appended and
// fsynced to this shard's WAL, and only then does the result frame go
// back to the coordinator. A worker killed between the WAL append and
// the frame has already made the outcome durable: recovery merges the
// shard WAL and the spec is not re-run.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
)

// RunWorker runs one worker process's session: dial addr, announce
// shard, execute assigned specs until the coordinator says bye (clean
// return) or the connection breaks (error — typically the coordinator
// died, and this process should exit with it).
func RunWorker(ctx context.Context, addr string, shard int) error {
	if shard < 0 {
		return fmt.Errorf("fabric: negative shard %d", shard)
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("fabric: dial coordinator: %w", err)
	}
	defer conn.Close()

	var wmu sync.Mutex
	send := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, f)
	}
	if err := send(&frame{Type: frameHello, Shard: shard, PID: os.Getpid()}); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("fabric: waiting for welcome: %w", err)
	}
	if f.Type != frameWelcome || f.Config == nil {
		return fmt.Errorf("fabric: expected welcome, got %q", f.Type)
	}
	conn.SetReadDeadline(time.Time{})
	cfg := *f.Config

	inj, err := resilience.ParseFaults(cfg.Faults)
	if err != nil {
		return fmt.Errorf("fabric: worker faults: %w", err)
	}
	exec := campaign.NewLocalExecutor(campaign.Options{
		OutDir:       cfg.OutDir,
		Workers:      1, // one spec in flight per worker: the fabric's capacity discipline
		PoolLanes:    cfg.PoolLanes,
		Retry:        resilience.Policy{MaxAttempts: cfg.MaxAttempts, BaseDelay: cfg.BaseDelay, MaxDelay: cfg.MaxDelay},
		RunTimeout:   cfg.RunTimeout,
		StallTimeout: cfg.StallTimeout,
		Grace:        cfg.Grace,
		Faults:       inj,
	})
	var wal *campaign.ShardJournal
	if cfg.OutDir != "" {
		if wal, err = campaign.OpenShardJournal(cfg.OutDir, shard); err != nil {
			return err
		}
		defer wal.Close()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeats: a monotone counter on a timer. It asserts "this process
	// is alive and its socket works" — per-run liveness is the local
	// executor's watchdog's job, so a long-legitimate kernel does not get
	// its worker declared dead.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(cfg.HeartbeatEvery)
		defer t.Stop()
		var beat int64
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				beat++
				if send(&frame{Type: frameHeartbeat, Beat: beat}) != nil {
					return
				}
			}
		}
	}()

	// Assigned specs execute on a separate goroutine so the read loop
	// stays responsive to bye while a run is in flight. The coordinator's
	// capacity discipline sends at most one assign before the matching
	// result, so the buffer never fills.
	assigns := make(chan campaign.RunSpec, 4)
	runErr := make(chan error, 1)
	go func() {
		defer close(runErr)
		for spec := range assigns {
			sr := exec.Submit(runCtx, spec)
			if sr.Status != campaign.StatusCanceled {
				if err := wal.Append(spec.ID(), shardEntry(sr)); err != nil {
					runErr <- err
					return
				}
			}
			if err := send(&frame{Type: frameResult, Result: toWire(sr)}); err != nil {
				runErr <- err
				return
			}
		}
	}()

	for {
		f, err := readFrame(br)
		if err != nil {
			close(assigns)
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("fabric: coordinator connection: %w", err)
		}
		switch f.Type {
		case frameAssign:
			if f.Spec != nil {
				select {
				case assigns <- *f.Spec:
				case err := <-runErr:
					close(assigns)
					return fmt.Errorf("fabric: worker shard%d: %w", shard, err)
				}
			}
		case frameBye:
			close(assigns)
			if err := <-runErr; err != nil {
				return fmt.Errorf("fabric: worker shard%d: %w", shard, err)
			}
			return nil
		}
	}
}

// shardEntry builds the WAL record for one terminal outcome — the same
// shape the orchestrator journals to the root WAL, so the merge layer
// reconciles them field by field.
func shardEntry(sr campaign.SpecResult) campaign.ManifestEntry {
	e := campaign.ManifestEntry{
		Spec:     sr.Spec,
		Status:   sr.Status,
		WallSec:  sr.Elapsed.Seconds(),
		Attempts: sr.Attempts,
	}
	if sr.Path != "" {
		e.File = filepath.Base(sr.Path)
	}
	if sr.Err != nil {
		e.Error = sr.Err.Error()
	}
	return e
}
