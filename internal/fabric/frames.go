// Package fabric is the distributed sharded execution backend for
// campaigns: a coordinator that shards a plan's RunSpecs across worker
// processes over localhost TCP, with work-stealing rebalancing,
// per-shard write-ahead logs, and failure-domain isolation — a crashed
// or kill-9'd worker costs the campaign only its own in-flight specs.
//
// The protocol reuses the message discipline of internal/simmpi, the
// suite's MPI stand-in, translated from channels to a byte stream:
//
//   - typed frames — every message is one tagged, self-describing
//     record (hello, welcome, assign, result, heartbeat, bye), exactly
//     as simmpi messages carry (src, tag, payload);
//   - rendezvous — workers announce themselves with hello and the
//     coordinator holds the campaign at a barrier (AwaitReady) until
//     every shard has checked in, like simmpi's Run spawning all ranks
//     before any communicates;
//   - deterministic ordering — frames on one connection are strictly
//     FIFO (TCP plus a single writer lock per side), matching simmpi's
//     per-sender ordering guarantee, and the coordinator's dispatcher
//     visits workers and queues in shard order, so the same event
//     sequence always produces the same assignment sequence.
//
// On the wire each frame is a 4-byte big-endian length prefix followed
// by one JSON object. JSON keeps the frames debuggable (hexdump a
// session and read it) and reuses the RunSpec/ManifestEntry
// serializations the manifest already pins; the fabric moves a few
// frames per spec, so codec speed is irrelevant next to run time.
package fabric

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
)

// Frame types. The coordinator sends welcome/assign/bye; workers send
// hello/result/heartbeat.
const (
	frameHello     = "hello"     // worker → coordinator: shard rendezvous
	frameWelcome   = "welcome"   // coordinator → worker: execution config
	frameAssign    = "assign"    // coordinator → worker: run one spec
	frameResult    = "result"    // worker → coordinator: terminal outcome
	frameHeartbeat = "heartbeat" // worker → coordinator: liveness counter
	frameBye       = "bye"       // coordinator → worker: clean shutdown
)

// maxFrame bounds a decoded frame; anything larger is protocol
// corruption, not data.
const maxFrame = 16 << 20

// WorkerConfig is the execution configuration the coordinator hands each
// worker in the welcome frame — the worker-relevant subset of
// campaign.Options, so workers need no command-line mirroring of the
// campaign flags.
type WorkerConfig struct {
	// OutDir is the shared campaign output directory (single-host scope:
	// coordinator and workers see one filesystem).
	OutDir string `json:"out_dir,omitempty"`
	// PoolLanes sizes each run's private executor pool inside the worker.
	PoolLanes int `json:"pool_lanes,omitempty"`
	// Retry/watchdog knobs, mirrored from campaign.Options.
	MaxAttempts  int           `json:"max_attempts,omitempty"`
	BaseDelay    time.Duration `json:"base_delay,omitempty"`
	MaxDelay     time.Duration `json:"max_delay,omitempty"`
	RunTimeout   time.Duration `json:"run_timeout,omitempty"`
	StallTimeout time.Duration `json:"stall_timeout,omitempty"`
	Grace        time.Duration `json:"grace,omitempty"`
	// Faults is a resilience.ParseFaults spec; each worker owns an
	// independent injector seeded by it (documented in DESIGN.md — fault
	// counts are per worker process, not campaign-global).
	Faults string `json:"faults,omitempty"`
	// HeartbeatEvery is the worker's heartbeat frame period.
	HeartbeatEvery time.Duration `json:"heartbeat_every,omitempty"`
}

// wireResult is a SpecResult flattened for the wire: the error collapses
// to its message plus a transience marker, and the retained profile
// never travels (workers stream profiles to the shared OutDir instead).
type wireResult struct {
	ID            string          `json:"id"`
	Status        campaign.Status `json:"status"`
	Err           string          `json:"error,omitempty"`
	Transient     bool            `json:"transient,omitempty"`
	Path          string          `json:"path,omitempty"`
	Elapsed       time.Duration   `json:"elapsed,omitempty"`
	Attempts      int             `json:"attempts,omitempty"`
	KernelsFailed int             `json:"kernels_failed,omitempty"`
}

// toWire flattens a SpecResult for the result frame.
func toWire(sr campaign.SpecResult) *wireResult {
	w := &wireResult{
		ID:            sr.Spec.ID(),
		Status:        sr.Status,
		Path:          sr.Path,
		Elapsed:       sr.Elapsed,
		Attempts:      sr.Attempts,
		KernelsFailed: sr.KernelsFailed,
	}
	if sr.Err != nil {
		w.Err = sr.Err.Error()
		w.Transient = resilience.IsTransient(sr.Err)
	}
	return w
}

// toSpecResult reconstructs the coordinator-side SpecResult. The error
// chain cannot cross a process boundary, so transience — the one
// property the orchestrator's breaker inspects — is re-marked
// explicitly.
func (w *wireResult) toSpecResult(spec campaign.RunSpec) campaign.SpecResult {
	sr := campaign.SpecResult{
		Spec:          spec,
		Status:        w.Status,
		Path:          w.Path,
		Elapsed:       w.Elapsed,
		Attempts:      w.Attempts,
		KernelsFailed: w.KernelsFailed,
	}
	if w.Err != "" {
		err := fmt.Errorf("fabric: worker: %s", w.Err)
		if w.Transient {
			err = resilience.MarkTransient(err)
		}
		sr.Err = err
	}
	return sr
}

// frame is one protocol message. Exactly the fields of its Type are set;
// the rest stay at their zero values and marshal away.
type frame struct {
	Type string `json:"type"`

	// hello / welcome
	Shard  int           `json:"shard,omitempty"`
	PID    int           `json:"pid,omitempty"`
	Config *WorkerConfig `json:"config,omitempty"`

	// assign
	Spec *campaign.RunSpec `json:"spec,omitempty"`

	// result
	Result *wireResult `json:"result,omitempty"`

	// heartbeat: a monotone per-worker liveness counter.
	Beat int64 `json:"beat,omitempty"`
}

// writeFrame encodes one length-prefixed frame. Callers serialize writes
// per connection (each side holds a writer lock), preserving FIFO frame
// order.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encode %s frame: %w", f.Type, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	return nil
}

// readFrame decodes the next length-prefixed frame from r.
func readFrame(r *bufio.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through: a closed peer is not corruption
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("fabric: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("fabric: truncated frame: %w", err)
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("fabric: decode frame: %w", err)
	}
	return &f, nil
}
