// Package fabric is the distributed sharded execution backend for
// campaigns: a coordinator that shards a plan's RunSpecs across worker
// processes over localhost TCP, with work-stealing rebalancing,
// per-shard write-ahead logs, and failure-domain isolation — a crashed
// or kill-9'd worker costs the campaign only its own in-flight specs.
//
// The protocol reuses the message discipline of internal/simmpi, the
// suite's MPI stand-in, translated from channels to a byte stream:
//
//   - typed frames — every message is one tagged, self-describing
//     record (hello, welcome, assign, result, heartbeat, bye), exactly
//     as simmpi messages carry (src, tag, payload);
//   - rendezvous — workers announce themselves with hello and the
//     coordinator holds the campaign at a barrier (AwaitReady) until
//     every shard has checked in, like simmpi's Run spawning all ranks
//     before any communicates;
//   - deterministic ordering — frames on one connection are strictly
//     FIFO (TCP plus a single writer lock per side), matching simmpi's
//     per-sender ordering guarantee, and the coordinator's dispatcher
//     visits workers and queues in shard order, so the same event
//     sequence always produces the same assignment sequence.
//
// On the wire each frame is a 4-byte big-endian length prefix, one JSON
// object, and a 4-byte big-endian CRC32-C (Castagnoli) trailer over the
// JSON bytes. JSON keeps the frames debuggable (hexdump a session and
// read it) and reuses the RunSpec/ManifestEntry serializations the
// manifest already pins; the fabric moves a few frames per spec, so
// codec speed is irrelevant next to run time. The trailer means the
// protocol never trusts a byte: a flipped bit (storage, a chaos drill's
// net.corrupt fault) is detected at the receiver and tears down that
// one connection — never the process — after which the in-flight spec
// redispatches and the worker respawns.
package fabric

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
)

// Frame types. The coordinator sends welcome/assign/cancel/bye; workers
// send hello/result/heartbeat and echo bye; ack flows both ways (worker
// acks assigns, coordinator acks results) — the reliability layer that
// lets either side resend through a lossy chaos transport.
const (
	frameHello     = "hello"     // worker → coordinator: shard rendezvous
	frameWelcome   = "welcome"   // coordinator → worker: execution config
	frameAssign    = "assign"    // coordinator → worker: run one spec
	frameAck       = "ack"       // both ways: assign/result received (dedup + resend layer)
	frameCancel    = "cancel"    // coordinator → worker: abandon a hedged spec
	frameResult    = "result"    // worker → coordinator: terminal outcome
	frameHeartbeat = "heartbeat" // worker → coordinator: liveness counter
	frameBye       = "bye"       // coordinator → worker: clean shutdown (worker echoes it after draining)
)

// protoVersion is the wire protocol version exchanged in hello/welcome.
// A mismatch — a stale worker binary dialing a new coordinator — is
// rejected at the handshake instead of failing obscurely mid-campaign.
// v2 added the CRC trailer, the handshake fields, and ack/cancel frames.
const protoVersion = 2

// maxFrame bounds a decoded frame; anything larger is protocol
// corruption, not data.
const maxFrame = 16 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errFrameChecksum marks a frame whose CRC trailer did not match its
// body: the connection's stream can no longer be trusted and must be
// torn down (the sender may be fine — corruption can be the link's).
var errFrameChecksum = errors.New("fabric: frame checksum mismatch")

// WorkerConfig is the execution configuration the coordinator hands each
// worker in the welcome frame — the worker-relevant subset of
// campaign.Options, so workers need no command-line mirroring of the
// campaign flags.
type WorkerConfig struct {
	// OutDir is the shared campaign output directory (single-host scope:
	// coordinator and workers see one filesystem).
	OutDir string `json:"out_dir,omitempty"`
	// PoolLanes sizes each run's private executor pool inside the worker.
	PoolLanes int `json:"pool_lanes,omitempty"`
	// Retry/watchdog knobs, mirrored from campaign.Options.
	MaxAttempts  int           `json:"max_attempts,omitempty"`
	BaseDelay    time.Duration `json:"base_delay,omitempty"`
	MaxDelay     time.Duration `json:"max_delay,omitempty"`
	RunTimeout   time.Duration `json:"run_timeout,omitempty"`
	StallTimeout time.Duration `json:"stall_timeout,omitempty"`
	Grace        time.Duration `json:"grace,omitempty"`
	// Faults is a resilience.ParseFaults spec; each worker owns an
	// independent injector seeded by it (documented in DESIGN.md — fault
	// counts are per worker process, not campaign-global).
	Faults string `json:"faults,omitempty"`
	// HeartbeatEvery is the worker's heartbeat frame period.
	HeartbeatEvery time.Duration `json:"heartbeat_every,omitempty"`
}

// wireResult is a SpecResult flattened for the wire: the error collapses
// to its message plus a transience marker, and the retained profile
// never travels (workers stream profiles to the shared OutDir instead).
type wireResult struct {
	ID            string          `json:"id"`
	Status        campaign.Status `json:"status"`
	Err           string          `json:"error,omitempty"`
	Transient     bool            `json:"transient,omitempty"`
	Path          string          `json:"path,omitempty"`
	Elapsed       time.Duration   `json:"elapsed,omitempty"`
	Attempts      int             `json:"attempts,omitempty"`
	KernelsFailed int             `json:"kernels_failed,omitempty"`
}

// toWire flattens a SpecResult for the result frame.
func toWire(sr campaign.SpecResult) *wireResult {
	w := &wireResult{
		ID:            sr.Spec.ID(),
		Status:        sr.Status,
		Path:          sr.Path,
		Elapsed:       sr.Elapsed,
		Attempts:      sr.Attempts,
		KernelsFailed: sr.KernelsFailed,
	}
	if sr.Err != nil {
		w.Err = sr.Err.Error()
		w.Transient = resilience.IsTransient(sr.Err)
	}
	return w
}

// toSpecResult reconstructs the coordinator-side SpecResult. The error
// chain cannot cross a process boundary, so transience — the one
// property the orchestrator's breaker inspects — is re-marked
// explicitly.
func (w *wireResult) toSpecResult(spec campaign.RunSpec) campaign.SpecResult {
	sr := campaign.SpecResult{
		Spec:          spec,
		Status:        w.Status,
		Path:          w.Path,
		Elapsed:       w.Elapsed,
		Attempts:      w.Attempts,
		KernelsFailed: w.KernelsFailed,
	}
	if w.Err != "" {
		err := fmt.Errorf("fabric: worker: %s", w.Err)
		if w.Transient {
			err = resilience.MarkTransient(err)
		}
		sr.Err = err
	}
	return sr
}

// frame is one protocol message. Exactly the fields of its Type are set;
// the rest stay at their zero values and marshal away.
type frame struct {
	Type string `json:"type"`

	// hello / welcome
	Shard  int           `json:"shard,omitempty"`
	PID    int           `json:"pid,omitempty"`
	Config *WorkerConfig `json:"config,omitempty"`
	// Proto is the sender's protocol version; Campaign its campaign
	// identity. Both sides verify them at the handshake: a stale worker
	// or a fleet member from another campaign is turned away before it
	// can receive (or journal) work that is not its own.
	Proto    int    `json:"proto,omitempty"`
	Campaign string `json:"campaign,omitempty"`

	// assign. Crash carries the worker.crash fault decision: the worker
	// this assignment lands on crashes on receipt (chaos drills only).
	Spec  *campaign.RunSpec `json:"spec,omitempty"`
	Crash bool              `json:"crash,omitempty"`

	// ack / cancel: the spec ID being acknowledged or abandoned.
	ID string `json:"id,omitempty"`

	// result
	Result *wireResult `json:"result,omitempty"`

	// heartbeat: a monotone per-worker liveness counter.
	Beat int64 `json:"beat,omitempty"`
}

// writeFrame encodes one frame as a single Write: length prefix, JSON
// body, CRC32-C trailer. One Write per frame matters beyond efficiency —
// the chaos transport (chaos.go) injects faults at Write granularity, so
// a whole frame is delayed, dropped, duplicated, or corrupted as a unit
// and the drill exercises protocol recovery, not accidental framing
// desync. Callers serialize writes per connection (each side holds a
// writer lock), preserving FIFO frame order.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encode %s frame: %w", f.Type, err)
	}
	buf := make([]byte, 4+len(body)+4)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	binary.BigEndian.PutUint32(buf[4+len(body):], crc32.Checksum(body, castagnoli))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	return nil
}

// readFrame decodes the next length-prefixed frame from r and verifies
// its CRC trailer. Every failure mode returns an error and never panics:
// a hostile or corrupt stream costs at most one maxFrame allocation and
// the connection, not the process. A checksum failure wraps
// errFrameChecksum so the coordinator can count corrupt frames apart
// from ordinary disconnects.
func readFrame(r *bufio.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through: a closed peer is not corruption
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("fabric: frame length %d out of range", n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("fabric: truncated frame: %w", err)
	}
	sum := binary.BigEndian.Uint32(body[n:])
	body = body[:n]
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("%w (got %08x, want %08x)", errFrameChecksum, got, sum)
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("fabric: decode frame: %w", err)
	}
	return &f, nil
}
