package fabric

// The coordinator: the campaign-side half of the fabric. It satisfies
// campaign.Executor, so the orchestrator drives it exactly as it drives
// the in-process backend — one blocking Submit per spec, bounded by the
// orchestrator's worker pool. Inside, each submitted spec is queued on
// its home shard (a stable hash of the spec ID), dispatched to that
// shard's worker with capacity one in flight per worker, and stolen by
// whichever worker goes idle first when its own queue drains — so a
// skewed plan (all the slow specs hashing to one shard) still saturates
// the fleet.
//
// Failure domains: each worker is monitored by a stall watchdog over
// the heartbeat frames it sends (a SIGSTOP'd or wedged worker is
// declared dead even while its TCP connection lingers) and by the read
// loop (a kill-9'd worker's connection resets immediately; a corrupt
// frame tears the connection down at the CRC check). A dead worker's
// in-flight spec — at most one, by the capacity discipline — is requeued
// at the front of its home queue and redispatched to a surviving worker;
// everything the dead worker already completed is durable in its shard
// WAL and is never re-run. A per-worker circuit breaker quarantines a
// worker that keeps producing non-transient failures while its peers
// succeed (a sick sandbox, not a sick spec).
//
// Self-healing (the layers above mere survival):
//
//   - supervision — a dead or quarantined worker is respawned through
//     Config.Spawn under a capped exponential-backoff restart budget
//     (resilience.Policy), restoring full shard capacity instead of
//     limping on fewer queues; the respawned process reopens its shard
//     WAL in append mode, so completed work is never re-run;
//   - ack/resend — assigns are acknowledged by workers and results by
//     the coordinator; a sweeper retransmits whatever a lossy transport
//     swallowed, so a blackholed frame costs latency, not liveness;
//   - hedged redispatch — a spec in flight longer than HedgeFactor× the
//     campaign's running p95 is speculatively re-dispatched to an idle
//     worker; the first terminal result wins and the loser is canceled
//     and its late result dropped;
//   - graceful drain — Drain stops assignment, cancels queued work, and
//     waits for in-flight specs to finish under the caller's deadline,
//     so SIGTERM ends a campaign at a spec boundary with merged WALs.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
	"rajaperf/internal/telemetry"
)

// errWorkerDone marks a worker monitor context canceled by clean
// shutdown rather than by its watchdog.
var errWorkerDone = errors.New("fabric: worker session ended")

// Config configures a coordinator.
type Config struct {
	// Workers is the shard count: the fabric waits for exactly this many
	// worker processes at rendezvous.
	Workers int
	// Addr is the TCP listen address (default "127.0.0.1:0" — loopback,
	// ephemeral port; the fabric is deliberately single-host, see
	// DESIGN.md).
	Addr string
	// Worker is the execution configuration handed to every worker in
	// its welcome frame.
	Worker WorkerConfig
	// WorkerStall declares a worker dead when its heartbeat frames stop
	// for this long (0 = 10s, <0 = disabled; the read loop still catches
	// closed connections immediately).
	WorkerStall time.Duration
	// WorkerBreaker quarantines a worker after this many consecutive
	// non-transient failures (0 = no per-worker breaker). Distinct from
	// the orchestrator's (kernel set, variant) breaker: this one blames
	// the worker, not the work.
	WorkerBreaker int
	// Assign overrides home-shard assignment (tests force skew to
	// exercise stealing). Nil uses an FNV hash of the spec ID.
	Assign func(id string, shards int) int

	// Spawn launches (or relaunches) the worker process for a shard.
	// When set, a dead or quarantined worker is respawned under the
	// Respawn budget; nil disables supervision (PR 9 behavior: lost
	// capacity stays lost).
	Spawn func(shard int) error
	// Respawn caps and paces respawns per shard: MaxAttempts is the
	// cumulative restart budget (default 3 when Spawn is set), Delay
	// paces attempts with exponential backoff and deterministic jitter.
	Respawn resilience.Policy
	// HedgeFactor k arms hedged redispatch: a spec in flight longer than
	// k× the campaign's running p95 (and longer than ResendEvery) is
	// speculatively duplicated onto an idle worker. 0 disables hedging.
	HedgeFactor float64
	// ResendEvery paces the retransmit sweeper for unacknowledged
	// assigns and the hedge scan (0 = 500ms).
	ResendEvery time.Duration
	// Chaos is the coordinator-side fault injector: it drives the chaos
	// transport wrapping coordinator→worker writes (net.*) and decides
	// worker.crash at assign dispatch. Nil injects nothing.
	Chaos *resilience.Injector

	// Metrics receives the fabric.* series (nil = telemetry.Default()).
	Metrics *telemetry.Registry
	// Bus receives worker-lifecycle events (nil-safe).
	Bus *telemetry.Bus
	// Campaign is the campaign identity: stamped on bus events and
	// verified in the hello handshake, so a stray worker from another
	// campaign (or a stale binary speaking an old protocol) is turned
	// away at admission.
	Campaign string
}

// item is one submitted spec waiting for, or holding, a worker.
type item struct {
	spec campaign.RunSpec
	id   string
	home int
	res  chan campaign.SpecResult // buffered 1: delivery never blocks

	// Guarded by Coordinator.mu.
	started time.Time     // current dispatch time (hedge age, p95 samples)
	holders []*workerConn // workers currently running it (2 when hedged)
	hedged  bool
	done    bool // terminal result delivered; late duplicates drop
}

// workerConn is one connected worker.
type workerConn struct {
	shard int
	pid   int
	conn  net.Conn
	byed  chan struct{} // closed when the worker echoes bye

	wmu sync.Mutex // serializes frame writes (FIFO discipline)
	out io.Writer  // conn, chaos-wrapped after the handshake

	beat atomic.Int64 // last heartbeat counter received

	// Guarded by Coordinator.mu.
	inflight    *item
	assignAcked bool      // worker confirmed the current assign
	lastAssign  time.Time // last (re)transmit of the current assign
	crash       bool      // current assign carries a worker.crash fault
	dead        bool

	cancel context.CancelCauseFunc // monitor context
	wd     *resilience.Watchdog
}

// send writes one frame under the connection's writer lock, through the
// chaos transport once the handshake has armed it.
func (w *workerConn) send(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.out, f)
}

// sendRaw writes one frame directly to the connection, bypassing chaos.
// Administrative shutdown frames (bye) use it so a drill converges
// instead of wedging its own teardown.
func (w *workerConn) sendRaw(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

func (w *workerConn) name() string { return "shard" + strconv.Itoa(w.shard) }

// Coordinator shards campaign specs across worker processes. Create
// with NewCoordinator, pass as campaign Options.Executor, Close when
// the campaign returns.
type Coordinator struct {
	cfg  Config
	ln   net.Listener
	tele *fabricTele
	done chan struct{} // closed by Close; stops the sweeper

	mu              sync.Mutex
	workers         map[int]*workerConn // live workers by shard
	queues          map[int][]*item     // pending items by home shard
	connected       int                 // workers ever connected (rendezvous)
	closed          bool
	draining        bool
	failed          error         // set when the whole fleet is gone
	restarts        map[int]int   // cumulative spawn attempts by shard
	pendingRespawns int           // supervisors in flight (defers fleet-failure)
	durations       []time.Duration // terminal-result latencies (p95 source)

	ready chan struct{} // closed when all Workers shards connected

	beats        atomic.Int64 // frames received: the Executor heartbeat
	steals       atomic.Int64
	redispatches atomic.Int64
	respawns     atomic.Int64
	hedges       atomic.Int64

	breakers *resilience.Breaker // per-worker, keyed "shardN"
}

// NewCoordinator starts listening and accepting workers. It returns
// immediately; AwaitReady blocks until the fleet has rendezvoused.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("fabric: %d workers (need >= 1)", cfg.Workers)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.WorkerStall == 0 {
		cfg.WorkerStall = 10 * time.Second
	}
	if cfg.Worker.HeartbeatEvery <= 0 {
		cfg.Worker.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.ResendEvery <= 0 {
		cfg.ResendEvery = 500 * time.Millisecond
	}
	if cfg.Spawn != nil && cfg.Respawn.MaxAttempts == 0 {
		cfg.Respawn.MaxAttempts = 3
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		tele:     newFabricTele(cfg.Metrics),
		done:     make(chan struct{}),
		workers:  map[int]*workerConn{},
		queues:   map[int][]*item{},
		restarts: map[int]int{},
		ready:    make(chan struct{}),
		breakers: resilience.NewBreaker(cfg.WorkerBreaker),
	}
	go c.accept()
	go c.sweep()
	return c, nil
}

// Addr is the address workers dial ("127.0.0.1:port").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AwaitReady blocks until every shard's worker has said hello — the
// rendezvous barrier. Call it before campaign.Run so no spec waits on a
// fleet that never formed.
func (c *Coordinator) AwaitReady(ctx context.Context) error {
	select {
	case <-c.ready:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fabric: waiting for %d workers: %w", c.cfg.Workers, context.Cause(ctx))
	}
}

// accept admits worker connections until the listener closes.
func (c *Coordinator) accept() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

// admit performs the hello/welcome handshake and runs the worker's read
// loop.
func (c *Coordinator) admit(conn net.Conn) {
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(br)
	if err != nil || f.Type != frameHello || f.Shard < 0 || f.Shard >= c.cfg.Workers {
		conn.Close()
		return
	}
	if f.Proto != protoVersion || f.Campaign != c.cfg.Campaign {
		// A stale binary or a worker from another campaign: reject before
		// it can receive (or journal) work that is not its own.
		c.tele.rejects.Inc()
		telemetry.L().Warn("fabric handshake rejected",
			"shard", f.Shard, "proto", f.Proto, "want_proto", protoVersion,
			"campaign", f.Campaign, "want_campaign", c.cfg.Campaign)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	w := &workerConn{shard: f.Shard, pid: f.PID, conn: conn, out: conn, byed: make(chan struct{})}
	c.mu.Lock()
	if c.closed || c.workers[w.shard] != nil {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.workers[w.shard] = w
	c.connected++
	rendezvous := c.connected == c.cfg.Workers
	c.mu.Unlock()

	if err := w.send(&frame{Type: frameWelcome, Shard: w.shard, Config: &c.cfg.Worker,
		Proto: protoVersion, Campaign: c.cfg.Campaign}); err != nil {
		c.workerDead(w, fmt.Errorf("fabric: welcome: %w", err))
		return
	}
	// Arm the chaos transport only after the handshake: rendezvous has a
	// deadline but no retransmit layer, so faulting it would turn a drill
	// into a hang instead of a recovery.
	w.wmu.Lock()
	w.out = wrapChaos(conn, c.cfg.Chaos)
	w.wmu.Unlock()
	if rendezvous {
		close(c.ready)
	}
	c.tele.workersLive.Add(1)
	c.cfg.Bus.Publish(telemetry.Event{
		Type: "worker", Campaign: c.cfg.Campaign, Status: "connected",
		Worker: w.name(), Shard: w.shard,
	})

	// The worker stall watchdog samples the heartbeat counter carried by
	// heartbeat frames; a worker whose frames stop (SIGSTOP, livelock) is
	// declared dead even while its connection lingers.
	if c.cfg.WorkerStall > 0 {
		wctx, cancel := context.WithCancelCause(context.Background())
		w.cancel = cancel
		w.wd = resilience.Watch(cancel,
			resilience.WatchdogConfig{StallTimeout: c.cfg.WorkerStall},
			w.beat.Load)
		go func() {
			<-wctx.Done()
			if cause := context.Cause(wctx); !errors.Is(cause, errWorkerDone) {
				c.workerDead(w, fmt.Errorf("fabric: worker %s: %w", w.name(), cause))
			}
		}()
	}

	c.kick()
	for {
		f, err := readFrame(br)
		if err != nil {
			if errors.Is(err, errFrameChecksum) {
				// The stream is poisoned, not the process: count it, tear
				// down this connection, and let redispatch + respawn heal.
				c.tele.corrupt.Inc()
			}
			c.workerDead(w, fmt.Errorf("fabric: worker %s connection: %w", w.name(), err))
			return
		}
		switch f.Type {
		case frameHeartbeat:
			c.beats.Add(1)
			c.tele.heartbeats.Inc()
			w.beat.Store(f.Beat)
		case frameAck:
			c.mu.Lock()
			if w.inflight != nil && w.inflight.id == f.ID {
				w.assignAcked = true
			}
			c.mu.Unlock()
		case frameResult:
			if f.Result != nil {
				// Ack unconditionally — even a dropped duplicate or a hedge
				// loser's result — so the worker's resend loop quiesces.
				w.send(&frame{Type: frameAck, ID: f.Result.ID})
			}
			c.handleResult(w, f.Result)
		case frameBye:
			select {
			case <-w.byed:
			default:
				close(w.byed)
			}
		}
	}
}

// homeShard maps a spec to the shard that owns it.
func (c *Coordinator) homeShard(id string) int {
	if c.cfg.Assign != nil {
		if n := c.cfg.Assign(id, c.cfg.Workers); n >= 0 && n < c.cfg.Workers {
			return n
		}
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(c.cfg.Workers))
}

// Submit queues one spec on its home shard and blocks until a worker
// reports its terminal result (or ctx cancels). Part of
// campaign.Executor.
func (c *Coordinator) Submit(ctx context.Context, spec campaign.RunSpec) campaign.SpecResult {
	it := &item{spec: spec, id: spec.ID(), home: c.homeShard(spec.ID()),
		res: make(chan campaign.SpecResult, 1)}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return campaign.SpecResult{Spec: spec, Status: campaign.StatusCanceled,
			Err: errors.New("fabric: draining, no new work accepted")}
	}
	if c.closed || c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		if err == nil {
			err = errors.New("fabric: coordinator closed")
		}
		return campaign.SpecResult{Spec: spec, Status: campaign.StatusFailed,
			Err: fmt.Errorf("fabric: submit %s: %w", spec.ID(), err)}
	}
	c.queues[it.home] = append(c.queues[it.home], it)
	c.mu.Unlock()
	c.kick()

	select {
	case sr := <-it.res:
		return sr
	case <-ctx.Done():
		// Unqueue if still pending; an already-dispatched item keeps
		// running remotely and its late result lands in the buffered
		// channel, harmlessly.
		c.mu.Lock()
		q := c.queues[it.home]
		for i, qi := range q {
			if qi == it {
				c.queues[it.home] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return campaign.SpecResult{Spec: spec, Status: campaign.StatusCanceled, Err: context.Cause(ctx)}
	}
}

// assignment is one dispatch decision made under the lock and executed
// outside it.
type assignment struct {
	w      *workerConn
	it     *item
	stolen bool
	crash  bool
}

// kick dispatches until no free worker can be matched with pending
// work. Frame writes happen outside the coordinator lock; a failed
// write turns into a worker death, which requeues and re-kicks.
func (c *Coordinator) kick() {
	for {
		c.mu.Lock()
		asg := c.pickLocked()
		if asg != nil && c.cfg.Chaos.Fire(resilience.FaultWorkerCrash) {
			// The worker.crash decision is made here, coordinator-side, so
			// its count is campaign-global: a respawned worker does not
			// re-evaluate a budget the fleet already spent.
			asg.crash, asg.w.crash = true, true
		}
		c.mu.Unlock()
		if asg == nil {
			return
		}
		c.tele.assigned(asg.w.shard).Inc()
		if asg.stolen {
			c.steals.Add(1)
			c.tele.steals.Inc()
			c.cfg.Bus.Publish(telemetry.Event{
				Type: "worker", Campaign: c.cfg.Campaign, Status: "stole",
				Worker: asg.w.name(), Shard: asg.w.shard, Run: asg.it.spec.ID(),
			})
		}
		if err := asg.w.send(&frame{Type: frameAssign, Spec: &asg.it.spec, Crash: asg.crash}); err != nil {
			c.workerDead(asg.w, fmt.Errorf("fabric: assign to %s: %w", asg.w.name(), err))
		}
	}
}

// pickLocked matches the lowest-numbered free worker with work: its own
// queue first (FIFO), else a steal from the longest queue (ties to the
// lowest shard) — deterministic given the same event order. Returns nil
// while draining: drain's contract is that assignment stops.
func (c *Coordinator) pickLocked() *assignment {
	if c.draining {
		return nil
	}
	for s := 0; s < c.cfg.Workers; s++ {
		w := c.workers[s]
		if w == nil || w.dead || w.inflight != nil {
			continue
		}
		if q := c.queues[s]; len(q) > 0 {
			it := q[0]
			c.queues[s] = q[1:]
			c.dispatchLocked(w, it)
			return &assignment{w: w, it: it}
		}
		// Steal: the longest foreign queue keeps the fleet busy when the
		// hash (or a dead worker's orphaned queue) skews the load.
		victim, best := -1, 0
		for v := 0; v < c.cfg.Workers; v++ {
			if v != s && len(c.queues[v]) > best {
				victim, best = v, len(c.queues[v])
			}
		}
		if victim < 0 {
			continue
		}
		it := c.queues[victim][0]
		c.queues[victim] = c.queues[victim][1:]
		c.dispatchLocked(w, it)
		return &assignment{w: w, it: it, stolen: true}
	}
	return nil
}

// dispatchLocked binds an item to a worker as its primary dispatch.
func (c *Coordinator) dispatchLocked(w *workerConn, it *item) {
	w.inflight = it
	w.assignAcked = false
	w.crash = false
	w.lastAssign = time.Now()
	it.started = w.lastAssign
	it.holders = append(it.holders[:0], w)
}

// handleResult resolves a worker's in-flight item with its terminal
// result, cancels any hedge loser, and feeds the per-worker breaker.
func (c *Coordinator) handleResult(w *workerConn, r *wireResult) {
	if r == nil {
		return
	}
	c.beats.Add(1)
	c.mu.Lock()
	it := w.inflight
	if it == nil || it.id != r.ID {
		// A frame for work this worker no longer owns (it was declared
		// dead and revived, a canceled hedge, or a duplicate): drop it —
		// the authoritative copy already resolved, and the shard WAL merge
		// reconciles the duplicate outcome.
		c.mu.Unlock()
		return
	}
	w.inflight = nil
	w.assignAcked = false
	w.crash = false
	if it.done {
		// Hedge loser crossing the winner on the wire: drop, free the
		// worker for new work.
		c.mu.Unlock()
		c.kick()
		return
	}
	it.done = true
	var losers []*workerConn
	for _, h := range it.holders {
		if h != w && h.inflight == it {
			h.inflight = nil
			h.assignAcked = false
			losers = append(losers, h)
		}
	}
	it.holders = nil
	c.durations = append(c.durations, time.Since(it.started))
	c.mu.Unlock()

	for _, l := range losers {
		l.send(&frame{Type: frameCancel, ID: it.id})
	}
	sr := r.toSpecResult(it.spec)
	c.tele.result(sr.Status).Inc()

	quarantine := false
	switch {
	case sr.Status == campaign.StatusDone:
		c.breakers.Success(w.name())
	case sr.Status == campaign.StatusFailed && !resilience.IsTransient(sr.Err):
		quarantine = c.breakers.Failure(w.name(), sr.Err)
	}
	it.res <- sr
	if quarantine {
		c.workerDead(w, fmt.Errorf("fabric: worker %s quarantined: %s",
			w.name(), c.breakers.Reason(w.name())))
		return
	}
	c.kick()
}

// workerDead removes a worker from the fleet: its in-flight item — at
// most one — is requeued at the front of its home queue for redispatch
// (unless a hedge twin still runs it, or a drain is in progress), and
// everything the worker already completed stays durable in its shard
// WAL. When Config.Spawn is set, a supervisor respawns the shard under
// the restart budget. Idempotent per worker; a no-op during Close.
func (c *Coordinator) workerDead(w *workerConn, cause error) {
	c.mu.Lock()
	if w.dead || c.closed {
		w.dead = true
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.shard)
	it := w.inflight
	w.inflight = nil
	var drainCanceled *item
	if it != nil {
		for i, h := range it.holders {
			if h == w {
				it.holders = append(it.holders[:i:i], it.holders[i+1:]...)
				break
			}
		}
		switch {
		case it.done || len(it.holders) > 0:
			// Already resolved, or a hedge twin still runs it: nothing to
			// redispatch.
			it = nil
		case c.draining:
			// Drain stopped assignment; requeueing would strand the item.
			drainCanceled, it = it, nil
		default:
			c.redispatches.Add(1)
			c.tele.redispatches.Inc()
			c.queues[it.home] = append([]*item{it}, c.queues[it.home]...)
		}
	}
	respawn := false
	if c.cfg.Spawn != nil && !c.draining && c.restarts[w.shard] < c.cfg.Respawn.Attempts() {
		respawn = true
		c.pendingRespawns++
	}
	orphans := c.fleetFailCheckLocked(cause)
	c.mu.Unlock()

	w.conn.Close()
	if w.cancel != nil {
		w.cancel(errWorkerDone)
	}
	w.wd.Stop()
	c.tele.workersLive.Add(-1)
	c.tele.deaths.Inc()
	ev := telemetry.Event{
		Type: "worker", Campaign: c.cfg.Campaign, Status: "dead",
		Worker: w.name(), Shard: w.shard,
	}
	if cause != nil {
		ev.Err = cause.Error()
	}
	if it != nil {
		ev.Run = it.id
	}
	c.cfg.Bus.Publish(ev)
	if cause == nil {
		cause = fmt.Errorf("connection lost")
	}
	inflight := ""
	if it != nil {
		inflight = it.id
	}
	telemetry.L().Warn("fabric worker dead",
		"worker", w.name(), "cause", cause, "redispatching", inflight)
	if drainCanceled != nil {
		drainCanceled.res <- campaign.SpecResult{Spec: drainCanceled.spec,
			Status: campaign.StatusCanceled,
			Err:    fmt.Errorf("fabric: worker %s died during drain: %w", w.name(), cause)}
	}
	c.resolveOrphans(orphans)
	if respawn {
		go c.supervise(w.shard)
	}
	c.kick()
}

// fleetFailCheckLocked declares fleet failure when no worker is live,
// none is being respawned, and the fleet had fully formed — nothing will
// ever run the queues. It returns the orphaned items for resolution
// outside the lock.
func (c *Coordinator) fleetFailCheckLocked(cause error) []*item {
	if len(c.workers) > 0 || c.pendingRespawns > 0 || c.connected < c.cfg.Workers ||
		c.failed != nil || c.closed {
		return nil
	}
	c.failed = fmt.Errorf("fabric: all workers dead (last: %w)", cause)
	var orphans []*item
	for s, q := range c.queues {
		orphans = append(orphans, q...)
		c.queues[s] = nil
	}
	return orphans
}

func (c *Coordinator) resolveOrphans(orphans []*item) {
	for _, o := range orphans {
		o.res <- campaign.SpecResult{Spec: o.spec, Status: campaign.StatusFailed,
			Err: fmt.Errorf("fabric: %s never ran: %w", o.id, c.failedErr())}
	}
}

// supervise respawns one shard's worker: backoff, spawn, await
// admission; repeat until admitted or the cumulative restart budget is
// spent. One supervisor runs per death (pendingRespawns holds off
// fleet-failure while any is in flight).
func (c *Coordinator) supervise(shard int) {
	admitted := false
	name := "shard" + strconv.Itoa(shard)
	for !admitted {
		c.mu.Lock()
		if c.closed || c.draining || c.restarts[shard] >= c.cfg.Respawn.Attempts() {
			c.mu.Unlock()
			break
		}
		c.restarts[shard]++
		attempt := c.restarts[shard]
		c.mu.Unlock()

		time.Sleep(c.cfg.Respawn.Delay(attempt, uint64(shard)))
		c.cfg.Bus.Publish(telemetry.Event{
			Type: "worker", Campaign: c.cfg.Campaign, Status: "respawning",
			Worker: name, Shard: shard, Attempts: attempt,
		})
		if err := c.cfg.Spawn(shard); err != nil {
			telemetry.L().Warn("fabric respawn failed",
				"worker", name, "attempt", attempt, "err", err)
			continue
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			c.mu.Lock()
			alive := c.workers[shard] != nil
			closed := c.closed
			c.mu.Unlock()
			if alive {
				admitted = true
				break
			}
			if closed {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if admitted {
			c.respawns.Add(1)
			c.tele.respawns.Inc()
			c.cfg.Bus.Publish(telemetry.Event{
				Type: "worker", Campaign: c.cfg.Campaign, Status: "respawned",
				Worker: name, Shard: shard, Attempts: attempt,
			})
			telemetry.L().Info("fabric worker respawned", "worker", name, "attempt", attempt)
		}
	}

	c.mu.Lock()
	c.pendingRespawns--
	var orphans []*item
	if !admitted {
		orphans = c.fleetFailCheckLocked(errors.New("respawn budget exhausted"))
	}
	c.mu.Unlock()
	if !admitted {
		telemetry.L().Warn("fabric respawn gave up", "worker", name)
		c.resolveOrphans(orphans)
	}
	c.kick()
}

// sweep is the retransmit + hedge loop: every ResendEvery it resends
// unacknowledged assigns (the recovery path for blackholed frames) and
// hedges specs in flight longer than HedgeFactor× the running p95 onto
// idle workers.
func (c *Coordinator) sweep() {
	t := time.NewTicker(c.cfg.ResendEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		type send struct {
			w *workerConn
			f *frame
		}
		var resends []send
		var hedged []send
		now := time.Now()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		for _, w := range c.workers {
			it := w.inflight
			if w.dead || it == nil || w.assignAcked {
				continue
			}
			if now.Sub(w.lastAssign) >= c.cfg.ResendEvery {
				w.lastAssign = now
				resends = append(resends, send{w, &frame{Type: frameAssign, Spec: &it.spec, Crash: w.crash}})
			}
		}
		if c.cfg.HedgeFactor > 0 && !c.draining {
			if p95, ok := c.p95Locked(); ok {
				threshold := time.Duration(float64(p95) * c.cfg.HedgeFactor)
				// Floor at the sweep period: hedging below measurement
				// granularity would thrash on fast specs.
				if threshold < c.cfg.ResendEvery {
					threshold = c.cfg.ResendEvery
				}
				for s := 0; s < c.cfg.Workers; s++ {
					w := c.workers[s]
					if w == nil || w.dead || w.inflight == nil {
						continue
					}
					it := w.inflight
					if it.hedged || it.done || now.Sub(it.started) < threshold {
						continue
					}
					h := c.idleLocked()
					if h == nil {
						break
					}
					it.hedged = true
					it.holders = append(it.holders, h)
					h.inflight = it
					h.assignAcked = false
					h.crash = false
					h.lastAssign = now
					hedged = append(hedged, send{h, &frame{Type: frameAssign, Spec: &it.spec}})
				}
			}
		}
		c.mu.Unlock()
		for _, r := range resends {
			c.tele.resends.Inc()
			if err := r.w.send(r.f); err != nil {
				c.workerDead(r.w, fmt.Errorf("fabric: resend to %s: %w", r.w.name(), err))
			}
		}
		for _, h := range hedged {
			c.hedges.Add(1)
			c.tele.hedges.Inc()
			c.cfg.Bus.Publish(telemetry.Event{
				Type: "worker", Campaign: c.cfg.Campaign, Status: "hedged",
				Worker: h.w.name(), Shard: h.w.shard, Run: h.f.Spec.ID(),
			})
			telemetry.L().Info("fabric hedged redispatch",
				"run", h.f.Spec.ID(), "worker", h.w.name())
			if err := h.w.send(h.f); err != nil {
				c.workerDead(h.w, fmt.Errorf("fabric: hedge to %s: %w", h.w.name(), err))
			}
		}
	}
}

// idleLocked returns the lowest-numbered live worker with nothing in
// flight, or nil.
func (c *Coordinator) idleLocked() *workerConn {
	for s := 0; s < c.cfg.Workers; s++ {
		if w := c.workers[s]; w != nil && !w.dead && w.inflight == nil {
			return w
		}
	}
	return nil
}

// p95Locked estimates the campaign's running 95th-percentile spec
// latency; ok is false until enough samples exist to hedge against.
func (c *Coordinator) p95Locked() (time.Duration, bool) {
	if len(c.durations) < 3 {
		return 0, false
	}
	ds := append([]time.Duration(nil), c.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)*95/100], true
}

func (c *Coordinator) failedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Drain stops assignment and waits for in-flight specs to finish under
// ctx's deadline — the graceful half of SIGTERM. Queued-but-undispatched
// work resolves canceled immediately (resume re-runs it); in-flight
// specs run to their terminal result, so the campaign ends at a spec
// boundary with every outcome durable in its shard WAL. Part of the
// campaign.Drainer capability.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	var queued []*item
	for s, q := range c.queues {
		queued = append(queued, q...)
		c.queues[s] = nil
	}
	c.mu.Unlock()

	c.cfg.Bus.Publish(telemetry.Event{
		Type: "campaign", Campaign: c.cfg.Campaign, Status: "draining",
	})
	telemetry.L().Info("fabric draining", "queued_canceled", len(queued))
	errDrain := errors.New("fabric: drained before dispatch")
	for _, it := range queued {
		it.res <- campaign.SpecResult{Spec: it.spec, Status: campaign.StatusCanceled, Err: errDrain}
	}

	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		c.mu.Lock()
		n := 0
		for _, w := range c.workers {
			if w.inflight != nil && !w.inflight.done {
				n++
			}
		}
		c.mu.Unlock()
		if n == 0 {
			c.cfg.Bus.Publish(telemetry.Event{
				Type: "campaign", Campaign: c.cfg.Campaign, Status: "drained",
			})
			telemetry.L().Info("fabric drained")
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: drain: %d specs still in flight: %w", n, context.Cause(ctx))
		case <-t.C:
		}
	}
}

// Heartbeat aggregates liveness across the fleet: every heartbeat and
// result frame received advances it. Part of campaign.Executor.
func (c *Coordinator) Heartbeat() int64 { return c.beats.Load() }

// Steals counts specs dispatched off their home shard. Part of
// campaign.Executor.
func (c *Coordinator) Steals() int64 { return c.steals.Load() }

// Redispatches counts in-flight specs re-run because their worker died.
func (c *Coordinator) Redispatches() int64 { return c.redispatches.Load() }

// Respawns counts workers successfully respawned by supervision.
func (c *Coordinator) Respawns() int64 { return c.respawns.Load() }

// Hedges counts speculative redispatches of slow in-flight specs.
func (c *Coordinator) Hedges() int64 { return c.hedges.Load() }

// LiveWorkers is the current live fleet size.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Close dismisses the fleet: bye frames exchanged (workers echo bye
// after finishing their in-flight run, waited on briefly so sockets die
// at frame boundaries), connections and listener closed, anything still
// queued resolved as canceled. Idempotent. Part of campaign.Executor.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	var leftovers []*item
	for s, q := range c.queues {
		leftovers = append(leftovers, q...)
		c.queues[s] = nil
	}
	c.mu.Unlock()
	close(c.done)

	for _, w := range ws {
		w.sendRaw(&frame{Type: frameBye})
	}
	deadline := time.NewTimer(time.Second)
	defer deadline.Stop()
	for _, w := range ws {
		select {
		case <-w.byed:
		case <-deadline.C:
			// A wedged or chaos-starved worker: close its socket anyway.
		}
	}
	for _, w := range ws {
		w.conn.Close()
		if w.cancel != nil {
			w.cancel(errWorkerDone)
		}
		w.wd.Stop()
		c.tele.workersLive.Add(-1)
		c.cfg.Bus.Publish(telemetry.Event{
			Type: "worker", Campaign: c.cfg.Campaign, Status: "closed",
			Worker: w.name(), Shard: w.shard,
		})
	}
	c.ln.Close()
	for _, o := range leftovers {
		o.res <- campaign.SpecResult{Spec: o.spec, Status: campaign.StatusCanceled,
			Err: errors.New("fabric: coordinator closed")}
	}
	return nil
}

// fabricTele bundles the coordinator's metric handles (fabric.* series).
type fabricTele struct {
	reg          *telemetry.Registry
	workersLive  *telemetry.Gauge   // fabric.workers.live
	heartbeats   *telemetry.Counter // fabric.heartbeats
	steals       *telemetry.Counter // fabric.steals
	redispatches *telemetry.Counter // fabric.redispatches
	deaths       *telemetry.Counter // fabric.worker.deaths
	respawns     *telemetry.Counter // fabric.worker.respawns
	hedges       *telemetry.Counter // fabric.hedges
	resends      *telemetry.Counter // fabric.resends
	corrupt      *telemetry.Counter // fabric.frames.corrupt
	rejects      *telemetry.Counter // fabric.handshake.rejects
}

func newFabricTele(reg *telemetry.Registry) *fabricTele {
	if reg == nil {
		reg = telemetry.Default()
	}
	return &fabricTele{
		reg:          reg,
		workersLive:  reg.Gauge("fabric.workers.live"),
		heartbeats:   reg.Counter("fabric.heartbeats"),
		steals:       reg.Counter("fabric.steals"),
		redispatches: reg.Counter("fabric.redispatches"),
		deaths:       reg.Counter("fabric.worker.deaths"),
		respawns:     reg.Counter("fabric.worker.respawns"),
		hedges:       reg.Counter("fabric.hedges"),
		resends:      reg.Counter("fabric.resends"),
		corrupt:      reg.Counter("fabric.frames.corrupt"),
		rejects:      reg.Counter("fabric.handshake.rejects"),
	}
}

// assigned is the per-shard dispatch counter (fabric.assigned{shard=N}).
func (t *fabricTele) assigned(shard int) *telemetry.Counter {
	return t.reg.Counter("fabric.assigned", "shard", strconv.Itoa(shard))
}

// result is the per-status outcome counter (fabric.results{status=...}).
func (t *fabricTele) result(s campaign.Status) *telemetry.Counter {
	return t.reg.Counter("fabric.results", "status", string(s))
}
