package fabric

// The coordinator: the campaign-side half of the fabric. It satisfies
// campaign.Executor, so the orchestrator drives it exactly as it drives
// the in-process backend — one blocking Submit per spec, bounded by the
// orchestrator's worker pool. Inside, each submitted spec is queued on
// its home shard (a stable hash of the spec ID), dispatched to that
// shard's worker with capacity one in flight per worker, and stolen by
// whichever worker goes idle first when its own queue drains — so a
// skewed plan (all the slow specs hashing to one shard) still saturates
// the fleet.
//
// Failure domains: each worker is monitored by a stall watchdog over
// the heartbeat frames it sends (a SIGSTOP'd or wedged worker is
// declared dead even while its TCP connection lingers) and by the read
// loop (a kill-9'd worker's connection resets immediately). A dead
// worker's in-flight spec — at most one, by the capacity discipline —
// is requeued at the front of its home queue and redispatched to a
// surviving worker; everything the dead worker already completed is
// durable in its shard WAL and is never re-run. A per-worker circuit
// breaker quarantines a worker that keeps producing non-transient
// failures while its peers succeed (a sick sandbox, not a sick spec).

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
	"rajaperf/internal/telemetry"
)

// errWorkerDone marks a worker monitor context canceled by clean
// shutdown rather than by its watchdog.
var errWorkerDone = errors.New("fabric: worker session ended")

// Config configures a coordinator.
type Config struct {
	// Workers is the shard count: the fabric waits for exactly this many
	// worker processes at rendezvous.
	Workers int
	// Addr is the TCP listen address (default "127.0.0.1:0" — loopback,
	// ephemeral port; the fabric is deliberately single-host, see
	// DESIGN.md).
	Addr string
	// Worker is the execution configuration handed to every worker in
	// its welcome frame.
	Worker WorkerConfig
	// WorkerStall declares a worker dead when its heartbeat frames stop
	// for this long (0 = 10s, <0 = disabled; the read loop still catches
	// closed connections immediately).
	WorkerStall time.Duration
	// WorkerBreaker quarantines a worker after this many consecutive
	// non-transient failures (0 = no per-worker breaker). Distinct from
	// the orchestrator's (kernel set, variant) breaker: this one blames
	// the worker, not the work.
	WorkerBreaker int
	// Assign overrides home-shard assignment (tests force skew to
	// exercise stealing). Nil uses an FNV hash of the spec ID.
	Assign func(id string, shards int) int

	// Metrics receives the fabric.* series (nil = telemetry.Default()).
	Metrics *telemetry.Registry
	// Bus receives worker-lifecycle events (nil-safe).
	Bus *telemetry.Bus
	// Campaign is the identity stamped on bus events.
	Campaign string
}

// item is one submitted spec waiting for, or holding, a worker.
type item struct {
	spec campaign.RunSpec
	home int
	res  chan campaign.SpecResult // buffered 1: delivery never blocks
}

// workerConn is one connected worker.
type workerConn struct {
	shard int
	pid   int
	conn  net.Conn

	wmu sync.Mutex // serializes frame writes (FIFO discipline)

	beat atomic.Int64 // last heartbeat counter received

	// Guarded by Coordinator.mu.
	inflight *item
	dead     bool

	cancel context.CancelCauseFunc // monitor context
	wd     *resilience.Watchdog
}

// send writes one frame under the connection's writer lock.
func (w *workerConn) send(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

func (w *workerConn) name() string { return "shard" + strconv.Itoa(w.shard) }

// Coordinator shards campaign specs across worker processes. Create
// with NewCoordinator, pass as campaign Options.Executor, Close when
// the campaign returns.
type Coordinator struct {
	cfg  Config
	ln   net.Listener
	tele *fabricTele

	mu        sync.Mutex
	workers   map[int]*workerConn // live workers by shard
	queues    map[int][]*item     // pending items by home shard
	connected int                 // workers ever connected (rendezvous)
	closed    bool
	failed    error // set when the whole fleet is gone

	ready chan struct{} // closed when all Workers shards connected

	beats        atomic.Int64 // frames received: the Executor heartbeat
	steals       atomic.Int64
	redispatches atomic.Int64

	breakers *resilience.Breaker // per-worker, keyed "shardN"
}

// NewCoordinator starts listening and accepting workers. It returns
// immediately; AwaitReady blocks until the fleet has rendezvoused.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("fabric: %d workers (need >= 1)", cfg.Workers)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.WorkerStall == 0 {
		cfg.WorkerStall = 10 * time.Second
	}
	if cfg.Worker.HeartbeatEvery <= 0 {
		cfg.Worker.HeartbeatEvery = 250 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		tele:     newFabricTele(cfg.Metrics),
		workers:  map[int]*workerConn{},
		queues:   map[int][]*item{},
		ready:    make(chan struct{}),
		breakers: resilience.NewBreaker(cfg.WorkerBreaker),
	}
	go c.accept()
	return c, nil
}

// Addr is the address workers dial ("127.0.0.1:port").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AwaitReady blocks until every shard's worker has said hello — the
// rendezvous barrier. Call it before campaign.Run so no spec waits on a
// fleet that never formed.
func (c *Coordinator) AwaitReady(ctx context.Context) error {
	select {
	case <-c.ready:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fabric: waiting for %d workers: %w", c.cfg.Workers, context.Cause(ctx))
	}
}

// accept admits worker connections until the listener closes.
func (c *Coordinator) accept() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

// admit performs the hello/welcome handshake and runs the worker's read
// loop.
func (c *Coordinator) admit(conn net.Conn) {
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(br)
	if err != nil || f.Type != frameHello || f.Shard < 0 || f.Shard >= c.cfg.Workers {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	w := &workerConn{shard: f.Shard, pid: f.PID, conn: conn}
	c.mu.Lock()
	if c.closed || c.workers[w.shard] != nil {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.workers[w.shard] = w
	c.connected++
	rendezvous := c.connected == c.cfg.Workers
	c.mu.Unlock()

	if err := w.send(&frame{Type: frameWelcome, Shard: w.shard, Config: &c.cfg.Worker}); err != nil {
		c.workerDead(w, fmt.Errorf("fabric: welcome: %w", err))
		return
	}
	if rendezvous {
		close(c.ready)
	}
	c.tele.workersLive.Add(1)
	c.cfg.Bus.Publish(telemetry.Event{
		Type: "worker", Campaign: c.cfg.Campaign, Status: "connected",
		Worker: w.name(), Shard: w.shard,
	})

	// The worker stall watchdog samples the heartbeat counter carried by
	// heartbeat frames; a worker whose frames stop (SIGSTOP, livelock) is
	// declared dead even while its connection lingers.
	if c.cfg.WorkerStall > 0 {
		wctx, cancel := context.WithCancelCause(context.Background())
		w.cancel = cancel
		w.wd = resilience.Watch(cancel,
			resilience.WatchdogConfig{StallTimeout: c.cfg.WorkerStall},
			w.beat.Load)
		go func() {
			<-wctx.Done()
			if cause := context.Cause(wctx); !errors.Is(cause, errWorkerDone) {
				c.workerDead(w, fmt.Errorf("fabric: worker %s: %w", w.name(), cause))
			}
		}()
	}

	c.kick()
	for {
		f, err := readFrame(br)
		if err != nil {
			c.workerDead(w, fmt.Errorf("fabric: worker %s connection: %w", w.name(), err))
			return
		}
		switch f.Type {
		case frameHeartbeat:
			c.beats.Add(1)
			c.tele.heartbeats.Inc()
			w.beat.Store(f.Beat)
		case frameResult:
			c.handleResult(w, f.Result)
		}
	}
}

// homeShard maps a spec to the shard that owns it.
func (c *Coordinator) homeShard(id string) int {
	if c.cfg.Assign != nil {
		if n := c.cfg.Assign(id, c.cfg.Workers); n >= 0 && n < c.cfg.Workers {
			return n
		}
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(c.cfg.Workers))
}

// Submit queues one spec on its home shard and blocks until a worker
// reports its terminal result (or ctx cancels). Part of
// campaign.Executor.
func (c *Coordinator) Submit(ctx context.Context, spec campaign.RunSpec) campaign.SpecResult {
	it := &item{spec: spec, home: c.homeShard(spec.ID()), res: make(chan campaign.SpecResult, 1)}
	c.mu.Lock()
	if c.closed || c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		if err == nil {
			err = errors.New("fabric: coordinator closed")
		}
		return campaign.SpecResult{Spec: spec, Status: campaign.StatusFailed,
			Err: fmt.Errorf("fabric: submit %s: %w", spec.ID(), err)}
	}
	c.queues[it.home] = append(c.queues[it.home], it)
	c.mu.Unlock()
	c.kick()

	select {
	case sr := <-it.res:
		return sr
	case <-ctx.Done():
		// Unqueue if still pending; an already-dispatched item keeps
		// running remotely and its late result lands in the buffered
		// channel, harmlessly.
		c.mu.Lock()
		q := c.queues[it.home]
		for i, qi := range q {
			if qi == it {
				c.queues[it.home] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return campaign.SpecResult{Spec: spec, Status: campaign.StatusCanceled, Err: context.Cause(ctx)}
	}
}

// assignment is one dispatch decision made under the lock and executed
// outside it.
type assignment struct {
	w      *workerConn
	it     *item
	stolen bool
}

// kick dispatches until no free worker can be matched with pending
// work. Frame writes happen outside the coordinator lock; a failed
// write turns into a worker death, which requeues and re-kicks.
func (c *Coordinator) kick() {
	for {
		c.mu.Lock()
		asg := c.pickLocked()
		c.mu.Unlock()
		if asg == nil {
			return
		}
		c.tele.assigned(asg.w.shard).Inc()
		if asg.stolen {
			c.steals.Add(1)
			c.tele.steals.Inc()
			c.cfg.Bus.Publish(telemetry.Event{
				Type: "worker", Campaign: c.cfg.Campaign, Status: "stole",
				Worker: asg.w.name(), Shard: asg.w.shard, Run: asg.it.spec.ID(),
			})
		}
		if err := asg.w.send(&frame{Type: frameAssign, Spec: &asg.it.spec}); err != nil {
			c.workerDead(asg.w, fmt.Errorf("fabric: assign to %s: %w", asg.w.name(), err))
		}
	}
}

// pickLocked matches the lowest-numbered free worker with work: its own
// queue first (FIFO), else a steal from the longest queue (ties to the
// lowest shard) — deterministic given the same event order.
func (c *Coordinator) pickLocked() *assignment {
	for s := 0; s < c.cfg.Workers; s++ {
		w := c.workers[s]
		if w == nil || w.dead || w.inflight != nil {
			continue
		}
		if q := c.queues[s]; len(q) > 0 {
			it := q[0]
			c.queues[s] = q[1:]
			w.inflight = it
			return &assignment{w: w, it: it}
		}
		// Steal: the longest foreign queue keeps the fleet busy when the
		// hash (or a dead worker's orphaned queue) skews the load.
		victim, best := -1, 0
		for v := 0; v < c.cfg.Workers; v++ {
			if v != s && len(c.queues[v]) > best {
				victim, best = v, len(c.queues[v])
			}
		}
		if victim < 0 {
			continue
		}
		it := c.queues[victim][0]
		c.queues[victim] = c.queues[victim][1:]
		w.inflight = it
		return &assignment{w: w, it: it, stolen: true}
	}
	return nil
}

// handleResult resolves a worker's in-flight item with its terminal
// result and feeds the per-worker breaker.
func (c *Coordinator) handleResult(w *workerConn, r *wireResult) {
	if r == nil {
		return
	}
	c.beats.Add(1)
	c.mu.Lock()
	it := w.inflight
	if it == nil || it.spec.ID() != r.ID {
		// A frame for work this worker no longer owns (it was declared
		// dead and revived, or double-sent): drop it — the redispatched
		// copy is authoritative, and the shard WAL merge reconciles the
		// duplicate outcome.
		c.mu.Unlock()
		return
	}
	w.inflight = nil
	c.mu.Unlock()

	sr := r.toSpecResult(it.spec)
	c.tele.result(sr.Status).Inc()

	quarantine := false
	switch {
	case sr.Status == campaign.StatusDone:
		c.breakers.Success(w.name())
	case sr.Status == campaign.StatusFailed && !resilience.IsTransient(sr.Err):
		quarantine = c.breakers.Failure(w.name(), sr.Err)
	}
	it.res <- sr
	if quarantine {
		c.workerDead(w, fmt.Errorf("fabric: worker %s quarantined: %s",
			w.name(), c.breakers.Reason(w.name())))
		return
	}
	c.kick()
}

// workerDead removes a worker from the fleet: its in-flight item — at
// most one — is requeued at the front of its home queue for redispatch,
// and everything the worker already completed stays durable in its
// shard WAL. Idempotent per worker; a no-op during Close.
func (c *Coordinator) workerDead(w *workerConn, cause error) {
	c.mu.Lock()
	if w.dead || c.closed {
		w.dead = true
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.shard)
	it := w.inflight
	w.inflight = nil
	if it != nil {
		c.redispatches.Add(1)
		c.tele.redispatches.Inc()
		c.queues[it.home] = append([]*item{it}, c.queues[it.home]...)
	}
	var orphans []*item
	if len(c.workers) == 0 && c.connected >= c.cfg.Workers {
		// The whole fleet is gone: nothing will ever run the queues.
		c.failed = fmt.Errorf("fabric: all workers dead (last: %w)", cause)
		for s, q := range c.queues {
			orphans = append(orphans, q...)
			c.queues[s] = nil
		}
	}
	c.mu.Unlock()

	w.conn.Close()
	if w.cancel != nil {
		w.cancel(errWorkerDone)
	}
	w.wd.Stop()
	c.tele.workersLive.Add(-1)
	c.tele.deaths.Inc()
	ev := telemetry.Event{
		Type: "worker", Campaign: c.cfg.Campaign, Status: "dead",
		Worker: w.name(), Shard: w.shard,
	}
	if cause != nil {
		ev.Err = cause.Error()
	}
	if it != nil {
		ev.Run = it.spec.ID()
	}
	c.cfg.Bus.Publish(ev)
	if cause == nil {
		cause = fmt.Errorf("connection lost")
	}
	inflight := ""
	if it != nil {
		inflight = it.spec.ID()
	}
	telemetry.L().Warn("fabric worker dead",
		"worker", w.name(), "cause", cause, "redispatching", inflight)
	for _, o := range orphans {
		o.res <- campaign.SpecResult{Spec: o.spec, Status: campaign.StatusFailed,
			Err: fmt.Errorf("fabric: %s never ran: %w", o.spec.ID(), c.failedErr())}
	}
	c.kick()
}

func (c *Coordinator) failedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Heartbeat aggregates liveness across the fleet: every heartbeat and
// result frame received advances it. Part of campaign.Executor.
func (c *Coordinator) Heartbeat() int64 { return c.beats.Load() }

// Steals counts specs dispatched off their home shard. Part of
// campaign.Executor.
func (c *Coordinator) Steals() int64 { return c.steals.Load() }

// Redispatches counts in-flight specs re-run because their worker died.
func (c *Coordinator) Redispatches() int64 { return c.redispatches.Load() }

// Close dismisses the fleet: best-effort bye frames, connections and
// listener closed, anything still queued resolved as canceled.
// Idempotent. Part of campaign.Executor.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	var leftovers []*item
	for s, q := range c.queues {
		leftovers = append(leftovers, q...)
		c.queues[s] = nil
	}
	c.mu.Unlock()

	for _, w := range ws {
		w.send(&frame{Type: frameBye})
		w.conn.Close()
		if w.cancel != nil {
			w.cancel(errWorkerDone)
		}
		w.wd.Stop()
		c.tele.workersLive.Add(-1)
		c.cfg.Bus.Publish(telemetry.Event{
			Type: "worker", Campaign: c.cfg.Campaign, Status: "closed",
			Worker: w.name(), Shard: w.shard,
		})
	}
	c.ln.Close()
	for _, o := range leftovers {
		o.res <- campaign.SpecResult{Spec: o.spec, Status: campaign.StatusCanceled,
			Err: errors.New("fabric: coordinator closed")}
	}
	return nil
}

// fabricTele bundles the coordinator's metric handles (fabric.* series).
type fabricTele struct {
	reg          *telemetry.Registry
	workersLive  *telemetry.Gauge   // fabric.workers.live
	heartbeats   *telemetry.Counter // fabric.heartbeats
	steals       *telemetry.Counter // fabric.steals
	redispatches *telemetry.Counter // fabric.redispatches
	deaths       *telemetry.Counter // fabric.worker.deaths
}

func newFabricTele(reg *telemetry.Registry) *fabricTele {
	if reg == nil {
		reg = telemetry.Default()
	}
	return &fabricTele{
		reg:          reg,
		workersLive:  reg.Gauge("fabric.workers.live"),
		heartbeats:   reg.Counter("fabric.heartbeats"),
		steals:       reg.Counter("fabric.steals"),
		redispatches: reg.Counter("fabric.redispatches"),
		deaths:       reg.Counter("fabric.worker.deaths"),
	}
}

// assigned is the per-shard dispatch counter (fabric.assigned{shard=N}).
func (t *fabricTele) assigned(shard int) *telemetry.Counter {
	return t.reg.Counter("fabric.assigned", "shard", strconv.Itoa(shard))
}

// result is the per-status outcome counter (fabric.results{status=...}).
func (t *fabricTele) result(s campaign.Status) *telemetry.Counter {
	return t.reg.Counter("fabric.results", "status", string(s))
}
