package fabric

// Distributed-fabric acceptance: real worker processes (this test
// binary re-executing itself in worker mode), a real TCP coordinator,
// and real kernel executions. The tests pin the guarantees DESIGN.md
// promises: a fabric campaign's profiles are equivalent to a
// single-process run (oracle comparison), resume over a fabric-written
// directory re-runs nothing, a kill-9'd worker costs only its own
// in-flight spec (redispatched, campaign converges), and an idle worker
// steals from a skewed queue.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rajaperf/internal/caliper"
	"rajaperf/internal/campaign"
	"rajaperf/internal/resilience"
	"rajaperf/internal/telemetry"
	"rajaperf/internal/thicket"
)

// Worker-mode re-exec: when these env vars are set, the test binary is
// one of the fleet's worker processes, not a test run.
const (
	envWorkerAddr     = "RAJAPERF_FABRIC_WORKER"
	envWorkerShard    = "RAJAPERF_FABRIC_SHARD"
	envWorkerCampaign = "RAJAPERF_FABRIC_CAMPAIGN"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(envWorkerAddr); addr != "" {
		shard, err := strconv.Atoi(os.Getenv(envWorkerShard))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabric worker:", err)
			os.Exit(2)
		}
		if err := RunWorker(context.Background(), addr, shard, os.Getenv(envWorkerCampaign)); err != nil {
			fmt.Fprintln(os.Stderr, "fabric worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fleet is one coordinator plus its forked worker processes (initial and
// respawned).
type fleet struct {
	coord *Coordinator

	mu   sync.Mutex
	addr string // guarded: respawn supervisors read it from coordinator goroutines
	cmds []*exec.Cmd
}

// spawn forks one worker process of this test binary for the shard.
func (f *fleet) spawn(shard int, campaignID string) error {
	f.mu.Lock()
	addr := f.addr
	f.mu.Unlock()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envWorkerAddr+"="+addr,
		envWorkerShard+"="+strconv.Itoa(shard),
		envWorkerCampaign+"="+campaignID)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	f.mu.Lock()
	f.cmds = append(f.cmds, cmd)
	f.mu.Unlock()
	return nil
}

// startFleet builds a coordinator from cfg and forks cfg.Workers worker
// processes of this test binary, blocking until rendezvous. Setting
// cfg.Respawn.MaxAttempts arms supervision: the coordinator respawns
// dead workers through the same fork path.
func startFleet(t testing.TB, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	if cfg.Respawn.MaxAttempts > 0 {
		campaignID := cfg.Campaign
		cfg.Spawn = func(shard int) error { return f.spawn(shard, campaignID) }
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	f.mu.Lock()
	f.addr = coord.Addr()
	f.mu.Unlock()
	t.Cleanup(func() { f.stop() })
	for i := 0; i < cfg.Workers; i++ {
		if err := f.spawn(i, cfg.Campaign); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.AwaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return f
}

// stop dismisses the fleet and reaps the worker processes. Idempotent.
func (f *fleet) stop() {
	f.coord.Close()
	f.mu.Lock()
	cmds := f.cmds
	f.cmds = nil
	f.mu.Unlock()
	for _, cmd := range cmds {
		done := make(chan struct{})
		go func(c *exec.Cmd) {
			defer close(done)
			c.Wait()
		}(cmd)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			<-done
		}
	}
}

// testPlan is the acceptance campaign: 8 specs of executed stream
// kernels, small enough to run everywhere, real enough to produce
// checksummed profiles.
func testPlan() campaign.Plan {
	return campaign.Plan{
		Machines: []string{"SPR-DDR", "SPR-HBM"},
		Variants: []string{"RAJA_Seq", "RAJA_OpenMP"},
		Sizes:    []int{10_000, 20_000},
		Reps:     1,
		Kernels:  []string{"Stream_TRIAD", "Stream_DOT", "Stream_ADD"},
		Execute:  true,
	}
}

// normalize strips the run-varying parts of a profile — wall-clock
// metrics, collection metadata, executor shape — leaving what must be
// identical between a fabric run and a single-process run. The strip
// list matches the campaign package's serial/concurrent equivalence
// oracle.
func normalize(p *caliper.Profile) (map[string]map[string]float64, map[string]any) {
	recs := make(map[string]map[string]float64, len(p.Records))
	for _, r := range p.Records {
		m := make(map[string]float64, len(r.Metrics))
		for k, v := range r.Metrics {
			if k == "time" || k == "wall_time" {
				continue
			}
			m[k] = v
		}
		recs[r.PathKey()] = m
	}
	meta := make(map[string]any, len(p.Metadata))
	for k, v := range p.Metadata {
		switch {
		case strings.HasPrefix(k, "collection_"),
			strings.HasPrefix(k, "caliper.overhead."),
			k == "executor.workers", k == "executor.lanes",
			k == "campaign.attempt", // a redispatched spec legitimately re-counts
			k == "launchdate":
			continue
		}
		meta[k] = v
	}
	return recs, meta
}

// runFabric executes the plan over a fresh fleet of n workers into dir
// and finalizes the shard WAL merge, returning the campaign result and
// the coordinator (closed, but its counters remain readable).
func runFabric(t testing.TB, dir string, n int, plan campaign.Plan, tweak func(*Config), during func(*fleet)) (*campaign.Result, *Coordinator) {
	t.Helper()
	cfg := Config{
		Workers:  n,
		Worker:   WorkerConfig{OutDir: dir},
		Campaign: dir,
		Metrics:  new(telemetry.Registry),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	f := startFleet(t, cfg)
	if during != nil {
		during(f)
	}
	res, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir:   dir,
		Workers:  n,
		Executor: f.coord,
		Bus:      cfg.Bus,
		Campaign: dir,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.stop()
	if _, _, err := campaign.FinalizeShards(dir); err != nil {
		t.Fatal(err)
	}
	return res, f.coord
}

// TestFabricOracleEquivalence: the composed thicket of a 4-worker
// fabric campaign equals a single-process campaign over the same plan —
// same profiles (modulo wall-clock), same manifest counts, same
// composition shape.
func TestFabricOracleEquivalence(t *testing.T) {
	plan := testPlan()
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	soloDir := t.TempDir()
	soloRes, err := campaign.Run(context.Background(), plan, campaign.Options{
		OutDir: soloDir, Workers: 1, Metrics: new(telemetry.Registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	if soloRes.Done != len(specs) {
		t.Fatalf("solo campaign: %d done, want %d", soloRes.Done, len(specs))
	}

	fabDir := t.TempDir()
	fabRes, _ := runFabric(t, fabDir, 4, plan, nil, nil)
	if fabRes.Done != len(specs) {
		t.Fatalf("fabric campaign: %d done of %d (failed %d)", fabRes.Done, len(specs), fabRes.Failed)
	}

	soloMan, err := campaign.LoadManifest(soloDir)
	if err != nil {
		t.Fatal(err)
	}
	fabMan, err := campaign.LoadManifest(fabDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(soloMan.Entries) != len(fabMan.Entries) {
		t.Fatalf("manifest sizes differ: solo %d, fabric %d", len(soloMan.Entries), len(fabMan.Entries))
	}
	for id, se := range soloMan.Entries {
		fe, ok := fabMan.Entries[id]
		if !ok {
			t.Fatalf("fabric manifest missing %s", id)
		}
		if se.Status != fe.Status || se.File != fe.File {
			t.Fatalf("%s: solo %s/%s vs fabric %s/%s", id, se.Status, se.File, fe.Status, fe.File)
		}
		sp, err := caliper.ReadFile(soloDir + "/" + se.File)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := caliper.ReadFile(fabDir + "/" + fe.File)
		if err != nil {
			t.Fatal(err)
		}
		sRecs, sMeta := normalize(sp)
		fRecs, fMeta := normalize(fp)
		if !reflect.DeepEqual(sRecs, fRecs) {
			t.Errorf("%s: records differ between solo and fabric runs", id)
		}
		if !reflect.DeepEqual(sMeta, fMeta) {
			t.Errorf("%s: metadata differs between solo and fabric runs:\n%v\n%v", id, sMeta, fMeta)
		}
	}

	soloTk, err := thicket.FromDir(soloDir)
	if err != nil {
		t.Fatal(err)
	}
	fabTk, err := thicket.FromDir(fabDir)
	if err != nil {
		t.Fatal(err)
	}
	if soloTk.NumProfiles() != fabTk.NumProfiles() || soloTk.NumRows() != fabTk.NumRows() {
		t.Errorf("thicket shapes differ: solo %d profiles/%d rows, fabric %d/%d",
			soloTk.NumProfiles(), soloTk.NumRows(), fabTk.NumProfiles(), fabTk.NumRows())
	}
}

// TestFabricResumeZeroReruns: a resume over a completed fabric
// campaign's directory — whether resumed in-process or through a fresh
// fleet — re-runs nothing.
func TestFabricResumeZeroReruns(t *testing.T) {
	plan := testPlan()
	specs, _ := plan.Specs()
	dir := t.TempDir()
	res, _ := runFabric(t, dir, 2, plan, nil, nil)
	if res.Done != len(specs) {
		t.Fatalf("first run: %d done of %d", res.Done, len(specs))
	}

	t.Run("in-process resume", func(t *testing.T) {
		res2, err := campaign.Run(context.Background(), plan, campaign.Options{
			OutDir: dir, Workers: 2, Resume: true, Metrics: new(telemetry.Registry),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Resumed != len(specs) || res2.Done != 0 {
			t.Fatalf("resume re-ran work: %d resumed, %d done, want %d/0",
				res2.Resumed, res2.Done, len(specs))
		}
	})
	t.Run("fabric resume", func(t *testing.T) {
		cfg := Config{Workers: 2, Worker: WorkerConfig{OutDir: dir},
			Campaign: dir, Metrics: new(telemetry.Registry)}
		f := startFleet(t, cfg)
		res2, err := campaign.Run(context.Background(), plan, campaign.Options{
			OutDir: dir, Workers: 2, Resume: true, Executor: f.coord,
			Metrics: cfg.Metrics, Campaign: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.stop()
		if res2.Resumed != len(specs) || res2.Done != 0 {
			t.Fatalf("fabric resume re-ran work: %d resumed, %d done, want %d/0",
				res2.Resumed, res2.Done, len(specs))
		}
	})
}

// TestFabricKilledWorker: SIGKILL one worker while every worker
// provably has a spec in flight. The campaign must converge to the
// fault-free result — the dead worker's in-flight spec is redispatched
// to a survivor, its completed work is never re-run, and the death is
// visible on the event bus.
func TestFabricKilledWorker(t *testing.T) {
	plan := testPlan()
	// 12 specs, each chunky enough (>=60ms of compute) that the delayed
	// kill below provably lands while the victim is still mid-spec; at
	// small rep counts a spec can finish inside the kill delay and the
	// victim dies idle, with nothing to redispatch.
	plan.Sizes = []int{500_000, 750_000, 1_000_000}
	plan.Reps = 4000
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	bus := new(telemetry.Bus)
	var mu sync.Mutex
	running, finished := 0, 0
	killed := false
	deadEvents := 0

	var fl *fleet
	sub := bus.Subscribe(256, 0)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range sub.C {
			mu.Lock()
			switch {
			case ev.Type == "worker" && ev.Status == "dead":
				deadEvents++
			case ev.Type == "run" && ev.Status == "running":
				running++
			case ev.Type == "run":
				finished++
			}
			// Pigeonhole: 3 outstanding submits over 3 capacity-1 workers
			// means every worker holds exactly one in-flight spec — so the
			// victim is mid-spec when the signal lands. The short delay lets
			// the third Submit's dispatch (published just before it) settle.
			if !killed && running-finished == 3 && fl != nil {
				killed = true
				fl.mu.Lock()
				victim := fl.cmds[2].Process
				fl.mu.Unlock()
				go func() {
					time.Sleep(20 * time.Millisecond)
					victim.Kill()
				}()
			}
			mu.Unlock()
		}
	}()

	res, coord := runFabric(t, dir, 3, plan,
		func(cfg *Config) { cfg.Bus = bus },
		func(f *fleet) { fl = f })
	sub.Close()
	<-drained

	if !killed {
		t.Fatal("kill trigger never fired (campaign too fast?)")
	}
	if res.Done != len(specs) || res.Failed != 0 {
		t.Fatalf("campaign did not converge: %d done, %d failed of %d",
			res.Done, res.Failed, len(specs))
	}
	if got := coord.Redispatches(); got < 1 {
		t.Errorf("redispatches = %d, want >= 1 (victim held an in-flight spec)", got)
	}
	if deadEvents < 1 {
		t.Errorf("no worker-dead event on the bus")
	}

	// Convergence oracle: every spec's profile validates against its
	// manifest entry, exactly as a fault-free run.
	man, err := campaign.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if !man.Completed(dir, s) {
			t.Errorf("%s: not complete/valid after killed-worker campaign", s.ID())
		}
	}
}

// TestFabricWorkSteal: with every spec homed to shard 0, the other
// worker must steal to contribute — and the campaign finishes with both
// fleet members productive.
func TestFabricWorkSteal(t *testing.T) {
	plan := testPlan()
	specs, _ := plan.Specs()
	dir := t.TempDir()
	res, coord := runFabric(t, dir, 2, plan,
		func(cfg *Config) {
			cfg.Assign = func(string, int) int { return 0 }
		}, nil)
	if res.Done != len(specs) {
		t.Fatalf("%d done of %d", res.Done, len(specs))
	}
	if got := coord.Steals(); got < 1 {
		t.Errorf("steals = %d, want >= 1 (all specs homed to shard 0)", got)
	}
	// Both shards journaled outcomes: the thief's WAL proves it ran
	// stolen specs.
	sums, err := campaign.ShardSummaries(dir)
	if err != nil {
		t.Fatal(err)
	}
	bySh := map[int]campaign.ShardSummary{}
	for _, s := range sums {
		bySh[s.Shard] = s
	}
	if bySh[1].Records == 0 {
		t.Errorf("shard 1 journaled nothing; stealing never executed remotely: %+v", sums)
	}
}

// TestFrameRoundtrip pins the wire format: length-prefixed JSON frames
// survive encode/decode, and oversized or torn frames error instead of
// desynchronizing the stream.
func TestFrameRoundtrip(t *testing.T) {
	spec := campaign.RunSpec{Machine: "SPR-DDR", Variant: "RAJA_Seq", Size: 10_000, Schedule: "default"}
	frames := []*frame{
		{Type: frameHello, Shard: 3, PID: 4242},
		{Type: frameWelcome, Config: &WorkerConfig{OutDir: "/tmp/x", MaxAttempts: 2, HeartbeatEvery: time.Second}},
		{Type: frameAssign, Spec: &spec},
		{Type: frameResult, Result: &wireResult{ID: spec.ID(), Status: campaign.StatusDone, Attempts: 1}},
		{Type: frameHeartbeat, Beat: 17},
		{Type: frameBye},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d roundtrip:\ngot  %+v\nwant %+v", i, got, want)
		}
	}

	// Torn stream: a length prefix promising more bytes than arrive.
	r = bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 10, 'x'}))
	if _, err := readFrame(r); err == nil {
		t.Fatal("truncated frame must error")
	}
	// Absurd length: protocol corruption, not a 2 GiB allocation.
	r = bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
	if _, err := readFrame(r); err == nil {
		t.Fatal("oversized frame must error")
	}
	// A flipped bit anywhere in the body fails the CRC trailer with the
	// sentinel the coordinator counts corrupt frames by.
	buf.Reset()
	if err := writeFrame(&buf, &frame{Type: frameHeartbeat, Beat: 9}); err != nil {
		t.Fatal(err)
	}
	poisoned := buf.Bytes()
	poisoned[len(poisoned)/2] ^= 0x40
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(poisoned))); !errors.Is(err, errFrameChecksum) {
		t.Fatalf("bit-flipped frame: err = %v, want errFrameChecksum", err)
	}
}

// TestWireResultTransience: transience survives the process boundary —
// the one error property the orchestrator's breaker depends on.
func TestWireResultTransience(t *testing.T) {
	spec := campaign.RunSpec{Machine: "SPR-DDR", Variant: "RAJA_Seq", Size: 1, Schedule: "default"}
	tr := &wireResult{ID: spec.ID(), Status: campaign.StatusFailed, Err: "blip", Transient: true}
	if sr := tr.toSpecResult(spec); !resilience.IsTransient(sr.Err) {
		t.Error("transient marker lost crossing the wire")
	}
	hard := &wireResult{ID: spec.ID(), Status: campaign.StatusFailed, Err: "broken"}
	if sr := hard.toSpecResult(spec); resilience.IsTransient(sr.Err) {
		t.Error("non-transient error became transient crossing the wire")
	}
}

// TestFabricHeartbeat: a connected worker's heartbeat frames advance the
// coordinator's liveness counter even when no specs are in flight — the
// signal the per-worker stall watchdog consumes.
func TestFabricHeartbeat(t *testing.T) {
	cfg := Config{Workers: 1, Campaign: "hb", Metrics: new(telemetry.Registry),
		Worker: WorkerConfig{HeartbeatEvery: 50 * time.Millisecond}}
	f := startFleet(t, cfg)
	deadline := time.Now().Add(10 * time.Second)
	for f.coord.Heartbeat() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat frames arrived within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.stop()
}

// BenchmarkFabric measures campaign wall-clock across fleet sizes over
// a fixed CPU-bound plan; each worker runs single-laned so fleet size
// is the only parallelism axis. The specs are deliberately heavy
// (~100ms each) so compute dominates the per-spec fabric overhead
// (assign/result round-trip, profile write, WAL fsync). CI emits these
// as BENCH_fabric.json and gates on 4-worker scaling — meaningful only
// on a host with >= 4 cores; on fewer cores the fleets time-slice one
// another and wall-clock stays flat.
func BenchmarkFabric(b *testing.B) {
	plan := testPlan()
	plan.Sizes = []int{1_000_000, 2_000_000}
	plan.Reps = 1500
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				cfg := Config{Workers: n,
					Worker:   WorkerConfig{OutDir: dir, PoolLanes: 1},
					Campaign: dir, Metrics: new(telemetry.Registry)}
				f := startFleet(b, cfg)
				b.StartTimer()

				res, err := campaign.Run(context.Background(), plan, campaign.Options{
					OutDir: dir, Workers: n, Executor: f.coord,
					Metrics: cfg.Metrics, Campaign: dir,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed > 0 {
					b.Fatalf("%d specs failed", res.Failed)
				}

				b.StopTimer()
				f.stop()
				b.StartTimer()
			}
		})
	}
}
