package fabric

// Wire-format fuzzing: readFrame is the fabric's only parser of bytes
// from the network, and the chaos transport guarantees it will see
// torn, duplicated, and bit-flipped input. For arbitrary bytes it must
// return an error or a valid frame — never panic, never allocate past
// maxFrame — and any frame it accepts must re-encode and re-decode to
// itself (the stream stays framed; no desynchronization).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
	"time"

	"rajaperf/internal/campaign"
)

func FuzzFrame(f *testing.F) {
	seed := func(fr *frame) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	spec := campaign.RunSpec{Machine: "SPR-DDR", Variant: "RAJA_Seq", Size: 10_000, Schedule: "default"}
	f.Add(seed(&frame{Type: frameHello, Shard: 2, PID: 99, Proto: protoVersion, Campaign: "fuzz"}))
	f.Add(seed(&frame{Type: frameWelcome, Proto: protoVersion, Campaign: "fuzz",
		Config: &WorkerConfig{OutDir: "/tmp/x", MaxAttempts: 2, HeartbeatEvery: time.Second}}))
	f.Add(seed(&frame{Type: frameAssign, Spec: &spec, Crash: true}))
	f.Add(seed(&frame{Type: frameResult,
		Result: &wireResult{ID: spec.ID(), Status: campaign.StatusDone, Attempts: 1}}))
	f.Add(seed(&frame{Type: frameAck, ID: spec.ID()}))
	f.Add(seed(&frame{Type: frameHeartbeat, Beat: 42}))

	// Torn: the length prefix promises more bytes than arrive.
	f.Add([]byte{0, 0, 0, 10, 'x'})
	// Oversized: a corrupt length must error, not allocate 4 GiB.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	var huge [8]byte
	binary.BigEndian.PutUint32(huge[:4], maxFrame+1)
	f.Add(huge[:])
	// Bit-flipped: body corruption the CRC trailer must catch.
	flipped := seed(&frame{Type: frameBye})
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	// CRC-valid but not a JSON object.
	junk := []byte("not json")
	framed := make([]byte, 4+len(junk)+4)
	binary.BigEndian.PutUint32(framed[:4], uint32(len(junk)))
	copy(framed[4:], junk)
	binary.BigEndian.PutUint32(framed[4+len(junk):], crc32.Checksum(junk, castagnoli))
	f.Add(framed)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // torn, oversized, corrupt, or malformed: rejected, not panicked
		}
		if fr == nil {
			t.Fatal("readFrame returned neither frame nor error")
		}
		// Accepted frames must survive the wire again, unchanged.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if buf.Len() > maxFrame+8 {
			t.Fatalf("re-encoded frame is %d bytes, past maxFrame", buf.Len())
		}
		fr2, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("frame changed across re-encode:\nfirst  %+v\nsecond %+v", fr, fr2)
		}
	})
}
