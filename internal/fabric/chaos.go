package fabric

// The chaos transport: a write-side net.Conn wrapper that subjects every
// outgoing frame to the resilience injector's net.* fault points. Because
// writeFrame emits exactly one Write per frame, each fault decision
// applies to a whole frame — delayed, blackholed, duplicated, or
// bit-flipped as a unit — so a chaos drill exercises the protocol's
// recovery machinery (CRC teardown, ack/resend, hedging, respawn) rather
// than accidental stream desync.
//
// The wrapper is write-side only and is armed *after* the hello/welcome
// handshake: rendezvous has its own deadline and no retransmit layer, so
// faulting it would turn a drill into a hang instead of a recovery. Every
// post-handshake frame in both directions crosses a chaos boundary
// (coordinator writes through its wrapper, workers through theirs), which
// is equivalent to faulting the link itself.
//
// Determinism: decisions come from resilience.Injector, so a given
// (-faults spec, seed) produces the same multiset of per-point decisions
// every run — the property the chaos acceptance suite relies on to
// reproduce a convergence failure byte-for-byte.

import (
	"io"
	"time"

	"rajaperf/internal/resilience"
)

// chaosDelay is the pause injected by one net.delay firing — long enough
// to reorder work around the slow frame, short enough to stay far inside
// every liveness timeout (heartbeat stall, drain deadline).
const chaosDelay = 25 * time.Millisecond

// chaosWriter applies net.* faults to each Write. Callers already
// serialize writes per connection (the frame FIFO discipline), so the
// wrapper needs no locking of its own.
type chaosWriter struct {
	w   io.Writer
	inj *resilience.Injector
}

// wrapChaos returns w wrapped with fault injection, or w itself when the
// injector arms no network points — the fault-free path stays zero-cost.
func wrapChaos(w io.Writer, inj *resilience.Injector) io.Writer {
	if !inj.Enabled(resilience.FaultNetDelay) &&
		!inj.Enabled(resilience.FaultNetDrop) &&
		!inj.Enabled(resilience.FaultNetDup) &&
		!inj.Enabled(resilience.FaultNetCorrupt) {
		return w
	}
	return &chaosWriter{w: w, inj: inj}
}

// Write evaluates each armed network fault once per frame. Order matters:
// a dropped frame is not also corrupted (its bytes never exist), and a
// duplicated frame carries the same corruption in both copies (a
// retransmitting link replays what it has).
func (c *chaosWriter) Write(b []byte) (int, error) {
	if c.inj.Fire(resilience.FaultNetDelay) {
		time.Sleep(chaosDelay)
	}
	if c.inj.Fire(resilience.FaultNetDrop) {
		// Blackhole: report success so the sender believes the frame left.
		// Recovery is the receiver's absence of response — ack timeouts,
		// hedges — exactly as with real packet loss past the kernel buffer.
		return len(b), nil
	}
	if c.inj.Fire(resilience.FaultNetCorrupt) {
		flipped := make([]byte, len(b))
		copy(flipped, b)
		// Flip one bit mid-frame: inside the JSON body for any real frame,
		// so the CRC trailer — not the length prefix — is what catches it.
		flipped[len(flipped)/2] ^= 0x40
		b = flipped
	}
	if c.inj.Fire(resilience.FaultNetDup) {
		if n, err := c.w.Write(b); err != nil {
			return n, err
		}
	}
	return c.w.Write(b)
}
