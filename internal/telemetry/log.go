package telemetry

// A small leveled, structured logger for the CLIs and the campaign
// orchestrator, replacing raw fmt.Fprintln(os.Stderr, ...) progress and
// warning lines. Lines are one-per-record, human-first:
//
//	15:04:05.000 INFO  campaign started campaign=runs specs=24 jobs=4
//
// Fields are key=value pairs appended in the order given, so a line is
// greppable by campaign or run ID without a JSON parser. The logger is
// not a hot-path component — it serializes writes under a mutex.

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the fixed-width level tag.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "DEBUG"
	case l == LevelInfo:
		return "INFO "
	case l == LevelWarn:
		return "WARN "
	default:
		return "ERROR"
	}
}

// ParseLevel resolves the -quiet/-v flag pair into a minimum level:
// quiet wins (errors only), -v lowers to debug, default is info.
func ParseLevel(quiet, verbose bool) Level {
	switch {
	case quiet:
		return LevelError
	case verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// Logger writes leveled, structured lines. A nil *Logger discards
// everything, so optional logging needs no conditionals.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	min    Level
	fields []string // pre-rendered "k=v" context, e.g. the campaign ID
}

// NewLogger returns a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// defaultLogger serves package-level helpers; stderr at info.
var (
	defaultLoggerMu sync.Mutex
	defaultLogger   = NewLogger(os.Stderr, LevelInfo)
)

// SetDefault replaces the process-wide logger (used by package-level
// L()) — the CLIs call this once after flag parsing.
func SetDefault(l *Logger) {
	defaultLoggerMu.Lock()
	defaultLogger = l
	defaultLoggerMu.Unlock()
}

// L returns the process-wide logger.
func L() *Logger {
	defaultLoggerMu.Lock()
	defer defaultLoggerMu.Unlock()
	return defaultLogger
}

// With returns a child logger carrying extra key=value context fields
// appended to every record (e.g. campaign and run IDs).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	child := &Logger{w: l.w, min: l.min, fields: append([]string(nil), l.fields...)}
	l.mu.Unlock()
	child.fields = appendFields(child.fields, kv)
	return child
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return level >= l.min
}

func appendFields(dst []string, kv []any) []string {
	for i := 0; i+1 < len(kv); i += 2 {
		dst = append(dst, fmt.Sprintf("%v=%v", kv[i], kv[i+1]))
	}
	if len(kv)%2 == 1 {
		dst = append(dst, fmt.Sprintf("DANGLING=%v", kv[len(kv)-1]))
	}
	return dst
}

// log writes one record if level clears the threshold.
func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level < l.min {
		return
	}
	var b strings.Builder
	b.WriteString(time.Now().Format("15:04:05.000"))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(msg)
	for _, f := range l.fields {
		b.WriteByte(' ')
		b.WriteString(f)
	}
	for _, f := range appendFields(nil, kv) {
		b.WriteByte(' ')
		b.WriteString(f)
	}
	b.WriteByte('\n')
	io.WriteString(l.w, b.String()) //nolint:errcheck // best-effort, like log
}

// Debug logs at debug level with key=value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level with key=value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level with key=value pairs.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level with key=value pairs.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }
