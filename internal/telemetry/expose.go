package telemetry

// Exposition formats: Prometheus text (the /metrics scrape format) and
// an expvar-style JSON snapshot (/debug/vars). Both render a Snapshot,
// so a scrape never blocks a hot-path writer for longer than the
// registry's read lock.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes a dotted metric name into the Prometheus grammar:
// the base name's non-[a-zA-Z0-9_] runes become '_', the label suffix
// (already `{k="v"}`-shaped) passes through.
func promName(name string) string {
	base, labels := SplitName(name)
	var b strings.Builder
	b.Grow(len(base) + len(labels))
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	b.WriteString(labels)
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges emit one
// sample each; histograms emit cumulative le-buckets, _sum (seconds,
// interpreting the recorded values as nanoseconds is the caller's
// convention — the raw unit is emitted as-is), and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	typed := map[string]bool{}
	emitType := func(name, kind string) {
		base, _ := SplitName(name)
		if !typed[base+kind] {
			typed[base+kind] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", promName(base), kind)
		}
	}
	for _, c := range s.Counters {
		emitType(c.Name, "counter")
		if _, err := fmt.Fprintf(w, "%s %v\n", promName(c.Name), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		emitType(g.Name, "gauge")
		if _, err := fmt.Fprintf(w, "%s %v\n", promName(g.Name), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		emitType(h.Name, "histogram")
		base, labels := SplitName(promName(h.Name))
		// Cumulative buckets at each occupied bucket's upper bound.
		idxs := make([]int, 0, len(h.Hist.Buckets))
		for i := range h.Hist.Buckets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var cum int64
		for _, i := range idxs {
			cum += h.Hist.Buckets[i]
			_, hi := bucketBounds(i)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				base, promLabels(labels, "le", fmt.Sprintf("%d", hi)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			base, promLabels(labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, h.Sum)
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels merges an extra label pair into an existing `{...}` suffix.
func promLabels(labels, k, v string) string {
	extra := fmt.Sprintf(`%s="%s"`, k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteVars renders the snapshot as one JSON object keyed by metric
// name — the expvar-style /debug/vars view. Histograms render their
// summary fields; map keys are the canonical (sorted-label) names, so
// the document is deterministic for a given registry state.
func WriteVars(w io.Writer, s Snapshot) error {
	vars := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for _, c := range s.Counters {
		vars[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		vars[g.Name] = g.Value
	}
	for _, h := range s.Hists {
		vars[h.Name] = map[string]any{
			"count": h.Count, "sum": h.Sum, "mean": h.Mean,
			"p50": h.P50, "p90": h.P90, "p99": h.P99, "max": h.Max,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{
		"taken":   s.Taken,
		"metrics": vars,
	})
}
