package telemetry

// The campaign event bus: the source of truth for live progress. The
// orchestrator publishes one Event per RunSpec status transition plus
// periodic heartbeats; subscribers — the CLI's progress printer and
// every connected /events SSE client — consume the same stream, so what
// an operator sees over HTTP is exactly what the terminal shows.
//
// Publish never blocks: each subscriber owns a bounded buffer, and a
// subscriber that falls behind drops the oldest events (counted, and
// surfaced to it as a gap in sequence numbers) rather than stalling the
// campaign. Events carry a bus-wide monotone sequence number assigned
// under the bus lock, so any single subscriber observes strictly
// increasing Seq values in publish order.

import (
	"sync"
	"time"
)

// Event is one progress notification on the bus.
type Event struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Type is the event class: "run" (a RunSpec status transition),
	// "heartbeat" (periodic campaign liveness), "campaign"
	// (campaign-level start/end), or "worker" (fabric worker lifecycle:
	// connected, stole, dead, closed).
	Type string `json:"type"`

	Campaign string  `json:"campaign,omitempty"` // campaign identity (output dir)
	Run      string  `json:"run,omitempty"`      // RunSpec ID
	Status   string  `json:"status,omitempty"`   // terminal status or phase
	Err      string  `json:"error,omitempty"`
	Elapsed  float64 `json:"elapsed_sec,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Finished int     `json:"finished,omitempty"`
	Total    int     `json:"total,omitempty"`
	InFlight int     `json:"in_flight,omitempty"`
	// Worker identifies a fabric worker on "worker" events ("shard3");
	// Shard is its shard index.
	Worker string `json:"worker,omitempty"`
	Shard  int    `json:"shard,omitempty"`
}

// Sub is one subscription: receive events from C until Close. If the
// subscriber lags past its buffer, the oldest pending events are
// dropped; Dropped reports how many.
type Sub struct {
	C chan Event

	bus     *Bus
	mu      sync.Mutex
	closed  bool
	dropped int64
}

// Dropped reports how many events this subscriber lost to backpressure.
func (s *Sub) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription and closes its channel.
func (s *Sub) Close() {
	s.bus.unsubscribe(s)
}

// Bus is a fan-out event bus. The zero value is ready; a nil *Bus
// discards publishes, so layers emit unconditionally.
type Bus struct {
	mu     sync.Mutex
	seq    int64
	subs   map[*Sub]struct{}
	recent []Event // ring of the last retainRecent events, for late joiners
	pub    Counter // events published
	drop   Counter // events dropped across all subscribers
}

// retainRecent bounds the replay window handed to new subscribers: an
// SSE client that connects mid-campaign sees the recent transitions
// without the bus retaining the whole history.
const retainRecent = 256

// Publish stamps ev with the next sequence number and fans it out.
// Never blocks; slow subscribers drop their oldest buffered event.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if len(b.recent) < retainRecent {
		b.recent = append(b.recent, ev)
	} else {
		copy(b.recent, b.recent[1:])
		b.recent[len(b.recent)-1] = ev
	}
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	b.pub.Inc()

	for _, s := range subs {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		for {
			select {
			case s.C <- ev:
			default:
				// Buffer full: drop the oldest pending event and retry.
				select {
				case <-s.C:
					s.dropped++
					b.drop.Inc()
				default:
				}
				continue
			}
			break
		}
		s.mu.Unlock()
	}
}

// Subscribe attaches a subscription with the given buffer (min 1).
// replay > 0 pre-fills the buffer with up to that many recent events
// (ordered, deduplicated against nothing — the subscriber starts at
// whatever suffix of history fits).
func (b *Bus) Subscribe(buffer, replay int) *Sub {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub{C: make(chan Event, buffer), bus: b}
	b.mu.Lock()
	if b.subs == nil {
		b.subs = map[*Sub]struct{}{}
	}
	if replay > 0 {
		start := len(b.recent) - replay
		if start < 0 {
			start = 0
		}
		for _, ev := range b.recent[start:] {
			if len(s.C) == cap(s.C) {
				break
			}
			s.C <- ev
		}
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

func (b *Bus) unsubscribe(s *Sub) {
	b.mu.Lock()
	_, present := b.subs[s]
	delete(b.subs, s)
	b.mu.Unlock()
	if !present {
		return
	}
	s.mu.Lock()
	s.closed = true
	close(s.C)
	s.mu.Unlock()
}

// Stats reports bus-level counters: events published and events dropped
// across all subscribers.
func (b *Bus) Stats() (published, dropped int64) {
	if b == nil {
		return 0, 0
	}
	return b.pub.Value(), b.drop.Value()
}
