package telemetry

import (
	"reflect"
	"testing"
	"time"
)

// stripTimes zeroes the capture timestamp so snapshots compare by
// content.
func stripTimes(s Snapshot) Snapshot {
	s.Taken = time.Time{}
	return s
}

// TestSnapshotDeterminism: two registries whose metrics were created in
// different orders but hold the same state must snapshot identically —
// the property the flusher and the differential tests rely on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []int) *Registry {
		r := &Registry{}
		ops := []func(){
			func() { r.Counter("c.alpha").Add(3) },
			func() { r.Counter("c.beta", "k", "v").Add(7) },
			func() { r.Gauge("g.depth").Set(2.5) },
			func() { r.Histogram("h.lat").Observe(1000) },
			func() { r.Histogram("h.lat").Observe(2000) },
			func() { r.GaugeFunc("g.fn", func() float64 { return 9 }) },
		}
		for _, i := range order {
			ops[i]()
		}
		return r
	}
	a := build([]int{0, 1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2, 0})
	sa, sb := stripTimes(a.Snapshot()), stripTimes(b.Snapshot())
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("creation order changed the snapshot:\n%+v\n%+v", sa, sb)
	}
	// Sorted by name within each section.
	for i := 1; i < len(sa.Counters); i++ {
		if sa.Counters[i-1].Name >= sa.Counters[i].Name {
			t.Fatal("counters not sorted")
		}
	}
	for i := 1; i < len(sa.Gauges); i++ {
		if sa.Gauges[i-1].Name >= sa.Gauges[i].Name {
			t.Fatal("gauges not sorted")
		}
	}
}

// TestRegistrySharedHandles: the same name resolves to the same handle,
// so instrumented layers share series without coordination; labels fold
// into the canonical name in any order.
func TestRegistrySharedHandles(t *testing.T) {
	r := &Registry{}
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter handle not shared")
	}
	if r.Counter("a", "x", "1", "y", "2") != r.Counter("a", "y", "2", "x", "1") {
		t.Error("label order created distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("gauge handle not shared")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram handle not shared")
	}
}

// TestSnapshotSub: counters and histograms delta, gauges read current,
// metrics new since the baseline appear at full value.
func TestSnapshotSub(t *testing.T) {
	r := &Registry{}
	c := r.Counter("runs")
	h := r.Histogram("lat")
	g := r.Gauge("depth")
	c.Add(5)
	h.Observe(100)
	g.Set(1)
	prev := r.Snapshot()

	c.Add(3)
	h.Observe(200)
	h.Observe(300)
	g.Set(9)
	r.Counter("fresh").Add(11)
	delta := r.Snapshot().Sub(prev)

	want := map[string]float64{"runs": 3, "fresh": 11}
	for _, cv := range delta.Counters {
		if cv.Value != want[cv.Name] {
			t.Errorf("counter %s delta = %v, want %v", cv.Name, cv.Value, want[cv.Name])
		}
		delete(want, cv.Name)
	}
	if len(want) != 0 {
		t.Errorf("missing counters in delta: %v", want)
	}
	if len(delta.Gauges) != 1 || delta.Gauges[0].Value != 9 {
		t.Errorf("gauge in delta = %+v, want current value 9", delta.Gauges)
	}
	if len(delta.Hists) != 1 || delta.Hists[0].Count != 2 || delta.Hists[0].Sum != 500 {
		t.Errorf("histogram delta = %+v, want count 2 sum 500", delta.Hists)
	}
}

// TestGaugeFunc: callback gauges are evaluated at snapshot time and
// reflect the current callback value, not the registration-time one.
func TestGaugeFunc(t *testing.T) {
	r := &Registry{}
	v := 1.0
	r.GaugeFunc("cache.hits", func() float64 { return v })
	if got := r.Snapshot().Gauges[0].Value; got != 1 {
		t.Fatalf("gauge func = %v, want 1", got)
	}
	v = 42
	if got := r.Snapshot().Gauges[0].Value; got != 42 {
		t.Fatalf("gauge func = %v, want 42", got)
	}
}

// TestRegistryConcurrent: concurrent get-or-create and snapshotting is
// safe and loses no updates (run under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := &Registry{}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(i))
				_ = r.Snapshot()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := r.Counter("shared").Value(); got != 4000 {
		t.Fatalf("shared counter = %d, want 4000", got)
	}
}
