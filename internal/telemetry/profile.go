package telemetry

// Telemetry-as-profiles: the feedback loop the paper draws between
// collection and analysis, applied to the suite's own runtime. A
// Flusher periodically snapshots a Registry, subtracts the previous
// snapshot, and writes the delta as an ordinary Caliper profile
// (adiak-style metadata, `telemetry.*` metric columns on a "telemetry"
// call-tree node) into the campaign output directory. The flushed
// profiles ride the same .cali.json pipeline as kernel data: they load
// through thicket.FromDirLenient, compose into the frame, and answer
// query-engine aggregations — so "how did the campaign behave?" is the
// same question, asked the same way, as "how did the kernels perform?".
//
// Schema. Each flush writes one profile:
//
//   - metadata: telemetry.profile=true, telemetry.flush=<ordinal>,
//     telemetry.interval_sec, launchdate (RFC 3339), plus any
//     caller-provided campaign identity keys;
//   - one record with path ["telemetry"], whose metric columns are
//     telemetry.<name> (counter deltas and gauge readings) and
//     telemetry.<name>.{count,sum_ns,mean_ns,p50_ns,p90_ns,p99_ns,max_ns}
//     (histogram interval summaries);
//   - counters additionally emit telemetry.<name>.total, the cumulative
//     value at flush time, so both rate and running-total analyses work
//     without re-summing the series.

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"rajaperf/internal/adiak"
	"rajaperf/internal/caliper"
)

// TelemetryNode is the call-tree node name telemetry records live on.
const TelemetryNode = "telemetry"

// MetadataKey marks a profile as a telemetry profile (metadata value
// true); analyses that want kernel rows only can filter it out with a
// metadata predicate.
const MetadataKey = "telemetry.profile"

// SnapshotProfile renders a (delta) snapshot as a Caliper profile. meta
// is merged into the standard telemetry metadata (caller keys win on
// conflict, except the reserved telemetry.* keys).
func SnapshotProfile(s Snapshot, flush int, interval time.Duration, meta map[string]any) *caliper.Profile {
	md := adiak.Metadata{}
	for k, v := range meta {
		md[k] = v
	}
	md[MetadataKey] = true
	md["telemetry.flush"] = flush
	md["telemetry.interval_sec"] = interval.Seconds()
	md["launchdate"] = adiak.Timestamp()

	metrics := map[string]float64{}
	for _, c := range s.Counters {
		metrics["telemetry."+c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		metrics["telemetry."+g.Name] = g.Value
	}
	for _, h := range s.Hists {
		base := "telemetry." + h.Name
		metrics[base+".count"] = float64(h.Count)
		metrics[base+".sum_ns"] = float64(h.Sum)
		metrics[base+".mean_ns"] = h.Mean
		metrics[base+".p50_ns"] = float64(h.P50)
		metrics[base+".p90_ns"] = float64(h.P90)
		metrics[base+".p99_ns"] = float64(h.P99)
		metrics[base+".max_ns"] = float64(h.Max)
	}
	return &caliper.Profile{
		Metadata: md,
		Records:  []caliper.Record{{Path: []string{TelemetryNode}, Metrics: metrics}},
	}
}

// Flusher periodically flushes registry deltas into a directory as
// telemetry profiles. Create with NewFlusher, start the period with
// Start, and Stop to perform the final flush.
type Flusher struct {
	reg      *Registry
	dir      string
	interval time.Duration
	meta     map[string]any
	log      *Logger

	mu    sync.Mutex
	prev  Snapshot
	seq   int
	wrote []string

	stop chan struct{}
	done chan struct{}
}

// NewFlusher returns a flusher writing delta profiles of reg (nil =
// Default()) into dir. meta keys (campaign identity) are stamped on
// every flushed profile. The cumulative baseline starts at the current
// registry state, so the first flush records activity from now on.
func NewFlusher(reg *Registry, dir string, interval time.Duration, meta map[string]any) *Flusher {
	if reg == nil {
		reg = Default()
	}
	return &Flusher{
		reg: reg, dir: dir, interval: interval, meta: meta,
		prev: reg.Snapshot(),
	}
}

// SetLogger routes flush failures to l (default: silent).
func (f *Flusher) SetLogger(l *Logger) { f.log = l }

// Flush snapshots the registry, writes the delta since the previous
// flush as one telemetry profile, and advances the baseline. Returns
// the written path ("" when the delta is empty and nothing was
// written — idle intervals do not litter the campaign directory).
func (f *Flusher) Flush() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.reg.Snapshot()
	delta := cur.Sub(f.prev)
	if !deltaActive(delta) {
		return "", nil
	}
	f.seq++
	p := SnapshotProfile(delta, f.seq, f.interval, f.meta)
	path := filepath.Join(f.dir, fmt.Sprintf("telemetry_%04d%s", f.seq, caliper.FileExt))
	if err := p.WriteFile(path); err != nil {
		f.seq-- // the ordinal was not used
		return "", err
	}
	f.prev = cur
	f.wrote = append(f.wrote, path)
	return path, nil
}

// deltaActive reports whether the delta carries any recorded activity.
func deltaActive(s Snapshot) bool {
	for _, c := range s.Counters {
		if c.Value != 0 {
			return true
		}
	}
	for _, h := range s.Hists {
		if h.Count != 0 {
			return true
		}
	}
	return false
}

// Written returns the paths flushed so far.
func (f *Flusher) Written() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.wrote...)
}

// Start begins periodic flushing (no-op when interval <= 0; Stop still
// performs the final flush).
func (f *Flusher) Start() {
	if f.interval <= 0 || f.stop != nil {
		return
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				if _, err := f.Flush(); err != nil {
					f.log.Warn("telemetry flush failed", "err", err)
				}
			}
		}
	}()
}

// Stop ends periodic flushing and performs a final flush, so the tail
// of activity since the last tick is never lost. Safe to call without
// Start, and idempotent.
func (f *Flusher) Stop() error {
	if f.stop != nil {
		select {
		case <-f.stop:
		default:
			close(f.stop)
			<-f.done
		}
	}
	_, err := f.Flush()
	return err
}
