package telemetry

// The debug/telemetry HTTP server: one address serving pprof, metrics,
// health, the expvar-style snapshot, and the live SSE event stream —
// the serving surface the rajaperfd daemon will grow from. Served on
// -metrics-addr (the retired -pprof-http flag remains a one-release
// deprecated alias).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// Server serves the telemetry plane over HTTP. Create with Serve.
type Server struct {
	reg *Registry
	bus *Bus

	ln     net.Listener
	srv    *http.Server
	health atomic.Pointer[string] // non-nil = unhealthy, value = reason

	// scrapes counts /metrics requests — itself a telemetry signal.
	scrapes Counter
}

// ServerOptions configures Serve.
type ServerOptions struct {
	// Registry to expose (nil = Default()).
	Registry *Registry
	// Bus streamed on /events (nil = no event stream; /events 404s).
	Bus *Bus
}

// Serve starts the telemetry server on addr (e.g. "localhost:6060";
// host:0 picks a free port — see Addr). The listener is bound
// synchronously, so a nil error means the endpoints are live.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	reg := opts.Registry
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{reg: reg, bus: opts.Bus, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed is expected
	return s, nil
}

// Addr returns the server's bound address (resolving a :0 request).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns "http://<addr>".
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown gracefully stops the server: in-flight scrapes finish, SSE
// streams close, the listener is released.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// SetUnhealthy marks /healthz failing with the given reason; an empty
// reason restores health. The campaign watchdog layer flips this when
// runs start timing out.
func (s *Server) SetUnhealthy(reason string) {
	if reason == "" {
		s.health.Store(nil)
		return
	}
	s.health.Store(&reason)
}

// Scrapes reports how many /metrics scrapes the server has answered.
func (s *Server) Scrapes() int64 { return s.scrapes.Value() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.reg.Snapshot()
	WritePrometheus(w, snap) //nolint:errcheck // client went away
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	WriteVars(w, s.reg.Snapshot()) //nolint:errcheck // client went away
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if reason := s.health.Load(); reason != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "unhealthy", "reason": *reason}) //nolint:errcheck
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ok"}) //nolint:errcheck
}

// handleEvents streams the bus as server-sent events: one `id:`/
// `event:`/`data:` frame per Event, flushed immediately. `?replay=N`
// prefixes up to N recent events so a client joining mid-campaign has
// context. The stream ends when the client disconnects or the server
// shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		http.NotFound(w, r)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replay := 0
	if v := r.URL.Query().Get("replay"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			replay = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := s.bus.Subscribe(64, replay)
	defer sub.Close()

	// A slow heartbeat comment keeps idle connections from being reaped
	// by intermediaries while the campaign is between events.
	keep := time.NewTicker(15 * time.Second)
	defer keep.Stop()

	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keep.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", ev.Seq, ev.Type); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends '\n'
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
