package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketRoundTrip: every value must land in a bucket whose bounds
// contain it, and every bucket past the exact range must be no wider
// than 1/histSub of its lower bound — the advertised quantile error.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 7, 15, 16, 17, 100, 1023, 1024, 1025,
		1<<20 - 1, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62, math.MaxInt64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		values = append(values, rng.Int63())
	}
	for _, v := range values {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi && !(v == math.MaxInt64 && hi == math.MaxInt64) {
			t.Fatalf("value %d bucketed to [%d, %d)", v, lo, hi)
		}
		if i >= 2*histSub && hi != math.MaxInt64 {
			if width := hi - lo; width > lo/histSub {
				t.Fatalf("bucket %d [%d, %d): width %d exceeds %d", i, lo, hi, width, lo/histSub)
			}
		}
	}
	// Bucket indexes are monotone in the value.
	prev := -1
	for v := int64(0); v < 100_000; v += 13 {
		if i := bucketIndex(v); i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		} else {
			prev = i
		}
	}
}

// TestHistogramQuantileOracle compares the histogram's interpolated
// quantiles against an exact sort of the same samples: the exact value
// must fall inside QuantileBounds, and the estimate must too — the
// bucket-width error contract.
func TestHistogramQuantileOracle(t *testing.T) {
	dists := map[string]func(r *rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":       func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*2 + 10)) },
		"small":     func(r *rand.Rand) int64 { return r.Int63n(20) },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var h Histogram
			samples := make([]int64, 5000)
			for i := range samples {
				samples[i] = gen(rng)
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			if s.Count != int64(len(samples)) {
				t.Fatalf("snapshot count %d, want %d", s.Count, len(samples))
			}
			for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				rank := int(math.Ceil(q * float64(len(samples))))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				lo, hi := s.QuantileBounds(q)
				if exact < lo || exact >= hi {
					t.Errorf("q=%g: exact %d outside bucket [%d, %d)", q, exact, lo, hi)
				}
				if est := s.Quantile(q); est < lo || est >= hi {
					t.Errorf("q=%g: estimate %d outside its own bucket [%d, %d)", q, est, lo, hi)
				}
			}
			var sum int64
			for _, v := range samples {
				sum += v
			}
			if s.Sum != sum {
				t.Errorf("snapshot sum %d, want %d", s.Sum, sum)
			}
		})
	}
}

// TestHistSnapshotMerge: merging is associative and commutative, and a
// merge of parts equals one histogram fed everything.
func TestHistSnapshotMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var whole Histogram
	parts := make([]*Histogram, 3)
	snaps := make([]HistSnapshot, 3)
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 1000+i*500; j++ {
			v := rng.Int63n(1 << uint(10+i*8))
			parts[i].Observe(v)
			whole.Observe(v)
		}
		snaps[i] = parts[i].Snapshot()
	}
	left := snaps[0].Merge(snaps[1]).Merge(snaps[2])
	right := snaps[0].Merge(snaps[1].Merge(snaps[2]))
	swapped := snaps[2].Merge(snaps[0]).Merge(snaps[1])
	all := whole.Snapshot()
	for _, m := range []HistSnapshot{left, right, swapped} {
		if m.Count != all.Count || m.Sum != all.Sum {
			t.Fatalf("merge count/sum %d/%d, want %d/%d", m.Count, m.Sum, all.Count, all.Sum)
		}
		if len(m.Buckets) != len(all.Buckets) {
			t.Fatalf("merge has %d buckets, want %d", len(m.Buckets), len(all.Buckets))
		}
		for i, n := range all.Buckets {
			if m.Buckets[i] != n {
				t.Fatalf("bucket %d: merged %d, want %d", i, m.Buckets[i], n)
			}
		}
	}
}

// TestHistSnapshotSub: (later - earlier) + earlier reconstructs later,
// and a delta of identical snapshots is empty.
func TestHistSnapshotSub(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 37)
	}
	early := h.Snapshot()
	for i := int64(0); i < 50; i++ {
		h.Observe(i * 1000)
	}
	late := h.Snapshot()

	delta := late.Sub(early)
	if delta.Count != 50 {
		t.Fatalf("delta count %d, want 50", delta.Count)
	}
	rebuilt := early.Merge(delta)
	if rebuilt.Count != late.Count || rebuilt.Sum != late.Sum {
		t.Fatalf("rebuilt %d/%d, want %d/%d", rebuilt.Count, rebuilt.Sum, late.Count, late.Sum)
	}
	for i, n := range late.Buckets {
		if rebuilt.Buckets[i] != n {
			t.Fatalf("rebuilt bucket %d = %d, want %d", i, rebuilt.Buckets[i], n)
		}
	}
	if empty := late.Sub(late); empty.Count != 0 || empty.Sum != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("self-delta not empty: %+v", empty)
	}
}

// TestConcurrentWriters hammers one counter, gauge, and histogram from
// many goroutines with snapshots taken mid-flight; run under -race this
// is the data-race gate, and the final totals must be exact.
func TestConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 10_000
	var (
		c  Counter
		g  Gauge
		h  Histogram
		wg sync.WaitGroup
	)
	stop := make(chan struct{})
	go func() { // concurrent reader: snapshots must never crash or tear
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n int64
				for _, b := range s.Buckets {
					n += b
				}
				if n != s.Count {
					t.Error("snapshot count does not match bucket mass")
					return
				}
				_ = c.Value()
				_ = g.Value()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestNilHandles: every handle type must be a no-op when nil, so call
// sites never need conditionals.
func TestNilHandles(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		b *Bus
		l *Logger
	)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(42)
	b.Publish(Event{Type: "run"})
	l.Info("dropped")
	l.With("k", "v").Error("also dropped")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles reported nonzero values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	if p, d := b.Stats(); p != 0 || d != 0 {
		t.Error("nil bus reported traffic")
	}
}

// TestCounterMonotone: negative adds are discarded by contract.
func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-5)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d after negative add, want 10", got)
	}
}

func TestName(t *testing.T) {
	cases := []struct {
		base   string
		labels []string
		want   string
	}{
		{"campaign.runs", nil, "campaign.runs"},
		{"campaign.runs", []string{"status", "done"}, `campaign.runs{status="done"}`},
		{"x", []string{"b", "2", "a", "1"}, `x{a="1",b="2"}`},
	}
	for _, c := range cases {
		if got := Name(c.base, c.labels...); got != c.want {
			t.Errorf("Name(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
	}
	base, labels := SplitName(`x{a="1"}`)
	if base != "x" || labels != `{a="1"}` {
		t.Errorf("SplitName = %q, %q", base, labels)
	}
}
