package telemetry

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Name composes a canonical metric name from a base and label pairs:
//
//	Name("campaign.retries", "cause", "timeout")
//	  -> `campaign.retries{cause="timeout"}`
//
// Labels sort by key so the same label set always yields the same name.
// Call it once at setup and keep the returned handle — label formatting
// is not a hot-path operation.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(p.v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitName splits a canonical metric name into its base and label
// suffix (`{...}` included, or "" when unlabeled).
func SplitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Registry is a process-wide metric namespace: named counters, gauges,
// histograms, and callback gauges. Lookup (get-or-create) takes a lock
// and is a setup-time operation; the returned handles are lock-free.
// All methods are safe for concurrent use. The zero Registry is ready.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// defaultRegistry is the process-wide registry instrumented layers
// record into unless a caller wires a specific one.
var defaultRegistry Registry

// Default returns the process-wide registry.
func Default() *Registry { return &defaultRegistry }

// Counter returns the named counter, creating it on first use. Optional
// label pairs are folded into the name via Name.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	name = Name(name, labels...)
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		if r.counters == nil {
			r.counters = map[string]*Counter{}
		}
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	name = Name(name, labels...)
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		if r.gauges == nil {
			r.gauges = map[string]*Gauge{}
		}
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	name = Name(name, labels...)
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if r.hists == nil {
			r.hists = map[string]*Histogram{}
		}
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers (or replaces) a callback gauge: fn is evaluated
// at snapshot time, so layers that already keep their own counters
// (pool instrumentation, the query cache) expose them without double
// bookkeeping. fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = map[string]func() float64{}
	}
	r.funcs[name] = fn
}

// MetricValue is one scalar metric in a snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistValue is one histogram in a snapshot: the mergeable bucket copy
// plus derived summary statistics.
type HistValue struct {
	Name string       `json:"name"`
	Hist HistSnapshot `json:"-"`

	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot is a deterministic point-in-time view of a registry: every
// slice sorted by metric name, values copied. Snapshots of the same
// registry state are equal regardless of when metrics were created.
type Snapshot struct {
	Taken    time.Time     `json:"taken"`
	Counters []MetricValue `json:"counters"`
	Gauges   []MetricValue `json:"gauges"`
	Hists    []HistValue   `json:"histograms"`
}

// Snapshot captures the registry. Callback gauges are evaluated outside
// the registry lock (they may themselves take locks), then merged into
// the gauge list under their registered names.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]MetricValue, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, MetricValue{Name: name, Value: float64(c.Value())})
	}
	gauges := make([]MetricValue, 0, len(r.gauges)+len(r.funcs))
	for name, g := range r.gauges {
		gauges = append(gauges, MetricValue{Name: name, Value: g.Value()})
	}
	type histRef struct {
		name string
		h    *Histogram
	}
	hrefs := make([]histRef, 0, len(r.hists))
	for name, h := range r.hists {
		hrefs = append(hrefs, histRef{name, h})
	}
	funcs := make([]struct {
		name string
		fn   func() float64
	}, 0, len(r.funcs))
	for name, fn := range r.funcs {
		funcs = append(funcs, struct {
			name string
			fn   func() float64
		}{name, fn})
	}
	r.mu.RUnlock()

	for _, f := range funcs {
		gauges = append(gauges, MetricValue{Name: f.name, Value: f.fn()})
	}
	s := Snapshot{Taken: time.Now(), Counters: counters, Gauges: gauges}
	for _, hr := range hrefs {
		s.Hists = append(s.Hists, histValue(hr.name, hr.h.Snapshot()))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// histValue derives the summary fields from a histogram snapshot.
func histValue(name string, hs HistSnapshot) HistValue {
	hv := HistValue{
		Name:  name,
		Hist:  hs,
		Count: hs.Count,
		Sum:   hs.Sum,
		Mean:  hs.Mean(),
		P50:   hs.Quantile(0.50),
		P90:   hs.Quantile(0.90),
		P99:   hs.Quantile(0.99),
	}
	if hs.Count > 0 {
		hv.Max = hs.Quantile(1)
	}
	return hv
}

// Sub returns the delta snapshot s minus prev: counters and histogram
// mass recorded between the two capture points (gauges keep their
// current value — an instantaneous reading has no meaningful delta).
// Metrics absent from prev are treated as zero, so new metrics appear
// with their full value.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{Taken: s.Taken, Gauges: append([]MetricValue(nil), s.Gauges...)}
	prevC := make(map[string]float64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[c.Name] = c.Value
	}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, MetricValue{Name: c.Name, Value: c.Value - prevC[c.Name]})
	}
	prevH := make(map[string]HistSnapshot, len(prev.Hists))
	for _, h := range prev.Hists {
		prevH[h.Name] = h.Hist
	}
	for _, h := range s.Hists {
		out.Hists = append(out.Hists, histValue(h.Name, h.Hist.Sub(prevH[h.Name])))
	}
	return out
}
