package telemetry

import (
	"testing"
	"time"
)

// TestHotPathZeroAlloc is the overhead contract as a hard gate: no
// hot-path metric update may allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	cases := map[string]func(){
		"counter.inc":   func() { c.Inc() },
		"counter.add":   func() { c.Add(3) },
		"gauge.set":     func() { g.Set(1.5) },
		"gauge.add":     func() { g.Add(-0.5) },
		"hist.observe":  func() { h.Observe(12345) },
		"hist.duration": func() { h.ObserveDuration(3 * time.Millisecond) },
		"bus.nil":       func() { (*Bus)(nil).Publish(Event{}) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per op", name, allocs)
		}
	}
}

// BenchmarkTelemetryHotPath measures the per-update cost of each metric
// primitive — the numbers EXPERIMENTS.md records against the ≤1%
// dispatch overhead budget.
func BenchmarkTelemetryHotPath(b *testing.B) {
	reg := &Registry{}
	c := reg.Counter("bench.counter")
	g := reg.Gauge("bench.gauge")
	h := reg.Histogram("bench.hist")

	b.Run("CounterInc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("HistObserve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("HistObserveParallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(0)
			for pb.Next() {
				h.Observe(v)
				v += 997
			}
		})
	})
	b.Run("NilHandles", func(b *testing.B) {
		b.ReportAllocs()
		var nc *Counter
		var nh *Histogram
		for i := 0; i < b.N; i++ {
			nc.Inc()
			nh.Observe(int64(i))
		}
	})
}

// BenchmarkSnapshot measures the cold-path costs: registry snapshot,
// delta, and rendering — what one flush or scrape costs the process.
func BenchmarkSnapshot(b *testing.B) {
	reg := &Registry{}
	for i := 0; i < 32; i++ {
		reg.Counter(Name("bench.c", "i", string(rune('a'+i)))).Add(int64(i))
		h := reg.Histogram(Name("bench.h", "i", string(rune('a'+i))))
		for v := int64(1); v < 1<<20; v *= 3 {
			h.Observe(v)
		}
	}
	prev := reg.Snapshot()
	b.Run("Snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = reg.Snapshot()
		}
	})
	b.Run("SnapshotSub", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = reg.Snapshot().Sub(prev)
		}
	})
}

// BenchmarkBusPublish measures the per-event bus cost with an attached
// (draining) subscriber — the campaign orchestrator's per-run cost.
func BenchmarkBusPublish(b *testing.B) {
	bus := &Bus{}
	sub := bus.Subscribe(1024, 0)
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C {
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: "run", Status: "done"})
	}
	b.StopTimer()
	sub.Close()
	<-done
}
