package telemetry

import (
	"sync"
	"testing"
)

// TestBusOrdering: a subscriber keeping up sees every event in publish
// order with strictly increasing sequence numbers — even when many
// goroutines publish concurrently.
func TestBusOrdering(t *testing.T) {
	bus := &Bus{}
	sub := bus.Subscribe(4096, 0)
	defer sub.Close()

	const publishers, each = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				bus.Publish(Event{Type: "run", Status: "done"})
			}
		}()
	}
	wg.Wait()

	var last int64
	for i := 0; i < publishers*each; i++ {
		ev := <-sub.C
		if ev.Seq <= last {
			t.Fatalf("event %d: seq %d not after %d", i, ev.Seq, last)
		}
		last = ev.Seq
	}
	if pub, drop := bus.Stats(); pub != publishers*each || drop != 0 {
		t.Fatalf("bus stats = %d published %d dropped, want %d/0", pub, drop, publishers*each)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("subscriber dropped %d events with a large buffer", sub.Dropped())
	}
}

// TestBusBackpressure: a slow subscriber loses the oldest events, never
// blocks the publisher, and still observes increasing Seq across the
// gap; Dropped accounts for the loss.
func TestBusBackpressure(t *testing.T) {
	bus := &Bus{}
	sub := bus.Subscribe(8, 0)
	defer sub.Close()

	const total = 1000
	for i := 0; i < total; i++ {
		bus.Publish(Event{Type: "run"}) // never blocks despite the tiny buffer
	}
	got := make([]int64, 0, 8)
	for {
		select {
		case ev := <-sub.C:
			got = append(got, ev.Seq)
			continue
		default:
		}
		break
	}
	if len(got) == 0 || len(got) > 8 {
		t.Fatalf("received %d events, want 1..8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("seq order violated after drops: %v", got)
		}
	}
	// The newest event always survives; the drops are all at the old end.
	if got[len(got)-1] != total {
		t.Errorf("newest surviving seq = %d, want %d", got[len(got)-1], total)
	}
	if d := sub.Dropped(); d != total-int64(len(got)) {
		t.Errorf("Dropped() = %d, want %d", d, total-int64(len(got)))
	}
}

// TestBusReplay: a late subscriber asking for replay gets the most
// recent events, in order, capped by the retention ring and its buffer.
func TestBusReplay(t *testing.T) {
	bus := &Bus{}
	for i := 0; i < 300; i++ {
		bus.Publish(Event{Type: "run"})
	}
	sub := bus.Subscribe(64, 10)
	defer sub.Close()
	for want := int64(291); want <= 300; want++ {
		ev := <-sub.C
		if ev.Seq != want {
			t.Fatalf("replayed seq %d, want %d", ev.Seq, want)
		}
	}
	// Replay larger than retention: bounded by the ring (256), then by
	// the subscriber's buffer.
	sub2 := bus.Subscribe(1024, 1024)
	defer sub2.Close()
	first := <-sub2.C
	if first.Seq != 300-retainRecent+1 {
		t.Fatalf("oldest replayed seq %d, want %d", first.Seq, 300-retainRecent+1)
	}
}

// TestSubClose: closing wakes a blocked receiver and a publish after
// close does not panic or deliver.
func TestSubClose(t *testing.T) {
	bus := &Bus{}
	sub := bus.Subscribe(1, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C {
		}
	}()
	bus.Publish(Event{Type: "run"})
	sub.Close()
	<-done
	bus.Publish(Event{Type: "run"}) // must not panic on the closed sub
	sub.Close()                     // idempotent
}
