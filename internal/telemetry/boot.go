package telemetry

// Boot is the shared CLI wiring for the telemetry plane: one call turns
// the -metrics-addr / -telemetry-interval flag pair into a running
// server and periodic profile flusher. It replaces the ad-hoc
// `go http.ListenAndServe(pprofAddr, nil)` the rajaperf driver used to
// start — the same address now serves /metrics, /debug/vars, /healthz,
// /events, and /debug/pprof/* with a graceful shutdown.

import (
	"context"
	"time"
)

// BootOptions configures Boot.
type BootOptions struct {
	// Addr serves the telemetry HTTP plane ("" = no server).
	Addr string
	// Bus is streamed on /events (nil = no event stream).
	Bus *Bus
	// FlushDir + FlushEvery enable the periodic snapshotter: registry
	// deltas are written to FlushDir as telemetry_NNNN.cali.json profiles
	// every FlushEvery (either zero = no flushing). A final flush runs at
	// shutdown so the tail of activity is never lost.
	FlushDir   string
	FlushEvery time.Duration
	// Meta is stamped on every flushed profile (campaign identity).
	Meta map[string]any
}

// Boot starts the configured pieces against the default registry and
// returns the running server (nil when Addr is empty) and a shutdown
// function (never nil; always safe to defer). The listener is bound
// synchronously: a nil error means /metrics is already answering.
func Boot(opts BootOptions) (*Server, func(), error) {
	var srv *Server
	if opts.Addr != "" {
		var err error
		if srv, err = Serve(opts.Addr, ServerOptions{Bus: opts.Bus}); err != nil {
			return nil, func() {}, err
		}
		L().Info("telemetry plane serving", "addr", srv.Addr())
	}
	var fl *Flusher
	if opts.FlushEvery > 0 && opts.FlushDir != "" {
		fl = NewFlusher(nil, opts.FlushDir, opts.FlushEvery, opts.Meta)
		fl.SetLogger(L())
		fl.Start()
	}
	shutdown := func() {
		if fl != nil {
			if err := fl.Stop(); err != nil {
				L().Warn("telemetry final flush failed", "err", err)
			} else if n := len(fl.Written()); n > 0 {
				L().Info("telemetry profiles flushed", "count", n, "dir", opts.FlushDir)
			}
		}
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
		}
	}
	return srv, shutdown, nil
}
