package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"rajaperf/internal/caliper"
)

// TestFlusherDeltas: each flush records only the activity since the
// previous one, idle intervals write nothing, and Stop performs the
// final flush.
func TestFlusherDeltas(t *testing.T) {
	dir := t.TempDir()
	reg := &Registry{}
	fl := NewFlusher(reg, dir, time.Second, map[string]any{"telemetry.source": "test"})

	// Idle: no activity since the baseline, nothing written.
	if path, err := fl.Flush(); err != nil || path != "" {
		t.Fatalf("idle flush = %q, %v; want no file", path, err)
	}

	reg.Counter("campaign.runs").Add(3)
	reg.Histogram("run.ns").Observe(5000)
	path1, err := fl.Flush()
	if err != nil || path1 == "" {
		t.Fatalf("first flush: %q, %v", path1, err)
	}
	p, err := caliper.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("flushed profile invalid: %v", err)
	}
	if v, _ := p.Metadata[MetadataKey].(bool); !v {
		t.Errorf("metadata %s = %v, want true", MetadataKey, p.Metadata[MetadataKey])
	}
	if v, _ := p.Metadata["telemetry.source"].(string); v != "test" {
		t.Errorf("caller metadata lost: %v", p.Metadata["telemetry.source"])
	}
	if len(p.Records) != 1 || p.Records[0].Path[0] != TelemetryNode {
		t.Fatalf("records = %+v, want one %q node", p.Records, TelemetryNode)
	}
	m := p.Records[0].Metrics
	if m["telemetry.campaign.runs"] != 3 {
		t.Errorf("counter column = %v, want 3", m["telemetry.campaign.runs"])
	}
	if m["telemetry.run.ns.count"] != 1 || m["telemetry.run.ns.sum_ns"] != 5000 {
		t.Errorf("histogram columns = count %v sum %v", m["telemetry.run.ns.count"], m["telemetry.run.ns.sum_ns"])
	}

	// Second interval: only the delta appears.
	reg.Counter("campaign.runs").Add(2)
	path2, err := fl.Flush()
	if err != nil || path2 == "" {
		t.Fatalf("second flush: %q, %v", path2, err)
	}
	p2, err := caliper.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if v := p2.Records[0].Metrics["telemetry.campaign.runs"]; v != 2 {
		t.Errorf("second interval counter delta = %v, want 2", v)
	}
	if _, has := p2.Records[0].Metrics["telemetry.run.ns.count"]; has {
		// An untouched histogram contributes an empty delta; its columns
		// still render (zero) — both behaviors are fine, but the count
		// must be zero if present.
		if p2.Records[0].Metrics["telemetry.run.ns.count"] != 0 {
			t.Errorf("idle histogram delta nonzero: %v", p2.Records[0].Metrics["telemetry.run.ns.count"])
		}
	}

	// Stop: final flush captures the tail.
	reg.Counter("campaign.runs").Inc()
	if err := fl.Stop(); err != nil {
		t.Fatal(err)
	}
	wrote := fl.Written()
	if len(wrote) != 3 {
		t.Fatalf("Written() = %v, want 3 paths", wrote)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "telemetry_*"+caliper.FileExt))
	if len(files) != 3 {
		t.Fatalf("dir holds %d telemetry profiles, want 3", len(files))
	}
}

// TestFlusherPeriodic: Start flushes on its own tick; Stop is
// idempotent.
func TestFlusherPeriodic(t *testing.T) {
	dir := t.TempDir()
	reg := &Registry{}
	fl := NewFlusher(reg, dir, 10*time.Millisecond, nil)
	fl.Start()
	reg.Counter("ticks").Inc()
	deadline := time.Now().Add(5 * time.Second)
	for len(fl.Written()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(fl.Written()) == 0 {
		t.Fatal("periodic flusher wrote nothing")
	}
	if err := fl.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Stop(); err != nil {
		t.Fatal("second Stop failed:", err)
	}
}

// TestFlusherWriteError: a failed write surfaces the error and does not
// consume the ordinal or advance the baseline.
func TestFlusherWriteError(t *testing.T) {
	// A regular file where the output directory should be makes every
	// write fail until it is cleared.
	dir := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(dir, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := &Registry{}
	fl := NewFlusher(reg, dir, time.Second, nil)
	reg.Counter("c").Inc()
	if _, err := fl.Flush(); err == nil {
		t.Fatal("flush into a blocked directory succeeded")
	}
	// After the directory appears, the same delta flushes as 0001.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path, err := fl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "telemetry_0001"+caliper.FileExt {
		t.Errorf("recovered flush wrote %s, want ordinal 0001", filepath.Base(path))
	}
	p, _ := caliper.ReadFile(path)
	if p.Records[0].Metrics["telemetry.c"] != 1 {
		t.Errorf("delta lost across the failed flush: %v", p.Records[0].Metrics)
	}
}

// TestBoot: the CLI wiring boots a live server plus flusher against the
// default registry, and shutdown performs the final flush.
func TestBoot(t *testing.T) {
	dir := t.TempDir()
	bus := &Bus{}
	srv, stop, err := Boot(BootOptions{
		Addr:       "127.0.0.1:0",
		Bus:        bus,
		FlushDir:   dir,
		FlushEvery: time.Hour, // only the shutdown flush will fire
		Meta:       map[string]any{"telemetry.source": "boot-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("Boot with Addr returned no server")
	}
	if code, _ := get(t, srv.URL()+"/healthz"); code != 200 {
		t.Fatalf("booted server unhealthy: %d", code)
	}
	// Default-registry activity lands in the shutdown flush.
	Default().Counter("boot.test.events").Inc()
	stop()
	files, _ := filepath.Glob(filepath.Join(dir, "telemetry_*"+caliper.FileExt))
	if len(files) != 1 {
		t.Fatalf("shutdown flush wrote %d profiles, want 1", len(files))
	}
	p, err := caliper.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Records[0].Metrics["telemetry.boot.test.events"] < 1 {
		t.Errorf("boot counter missing from shutdown flush")
	}
}
