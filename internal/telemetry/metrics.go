// Package telemetry is the suite's runtime observability plane: a
// zero-alloc-on-hot-path metrics core (atomic counters and gauges,
// log-bucketed latency histograms with mergeable snapshots), a
// process-wide Registry with cheap label support, live exposition over
// HTTP (Prometheus text, expvar-style JSON, health, and an SSE event
// stream), a small leveled structured logger, and a snapshotter that
// flushes registry deltas into a campaign directory as Caliper-profile
// telemetry records — so a collected campaign's own runtime behavior is
// queryable through the same thicket/frame machinery as its kernel data.
//
// The paper's thesis is that Caliper and Thicket make the suite itself
// observable; this package extends that to the production machinery the
// reproduction has grown around the suite — the executor pool, the
// campaign orchestrator, the resilience layer, and the query engine —
// which previously ran blind behind ad-hoc stderr lines.
//
// # Overhead contract
//
// Hot-path updates (Counter.Add, Gauge.Set, Histogram.Observe) are one
// or two uncontended atomic operations and never allocate. Metric
// handles are resolved once at setup (Registry.Counter etc., which take
// a lock) and then shared; nothing on a kernel's execution path performs
// a map lookup, string format, or allocation. Snapshots, exposition,
// and flushing are cold paths and may allocate freely.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is valid and discards updates, so
// call sites need no conditional plumbing when telemetry is off.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters are
// monotone by contract, which the exposition formats rely on).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; a
// nil *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (may be negative). Lock-free via CAS.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Log-bucketed histogram geometry. Values (nanoseconds, or any
// non-negative int64) map to buckets whose width is 1/histSub of their
// magnitude: histSubBits sub-buckets per power of two, so any recorded
// value lands in a bucket whose bounds are within 100/histSub percent
// of each other — the quantile error bound snapshots inherit.
const (
	histSubBits = 3 // sub-buckets per octave (8)
	histSub     = 1 << histSubBits

	// histBuckets covers the full non-negative int64 range: values below
	// 2*histSub are bucketed exactly (identity), and each further octave
	// contributes histSub buckets up to exponent 62.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// bucketIndex maps a non-negative value to its bucket. Values below
// 2*histSub map exactly; larger values keep histSubBits bits of
// mantissa below the leading bit.
func bucketIndex(v int64) int {
	if v < 2*histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v
	shift := uint(exp - histSubBits)
	sub := int(v>>shift) & (histSub - 1)
	return (exp-histSubBits)*histSub + sub + histSub
}

// bucketBounds returns the inclusive lower and exclusive upper value
// bound of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 2*histSub {
		return int64(i), int64(i) + 1
	}
	block := i/histSub - 1 // octaves past the exact range
	sub := int64(i & (histSub - 1))
	shift := uint(block)
	lo = (histSub + sub) << shift
	hi = lo + 1<<shift
	if hi < lo { // top bucket: upper bound saturates at MaxInt64
		hi = math.MaxInt64
	}
	return lo, hi
}

// Histogram is a lock-free log-bucketed histogram of non-negative
// int64 samples (latencies in nanoseconds, sizes in bytes). Recording
// is two atomic adds; the relative bucket width — and therefore the
// worst-case quantile estimation error — is 1/histSub (12.5%).
// The zero value is ready; a nil *Histogram discards observations.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// buckets are plain atomics, unpadded: a histogram is written by many
	// lanes but each sample touches one word, and the alternative —
	// padding ~500 buckets to cache lines — would cost 32 KiB per
	// histogram for a hot path that is already a single uncontended add
	// in the common case.
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram into a mergeable point-in-time view.
// Safe concurrently with Observe; a snapshot taken mid-record is a
// consistent-enough view (each word is individually atomic, and Count
// is reconstructed from the bucket copies so quantile ranks never
// exceed the copied mass).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64, 16)
			}
			s.Buckets[i] = n
			s.Count += n
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram: sparse bucket
// counts plus the running sum. Snapshots merge and subtract, so a
// periodic flusher can emit per-interval deltas whose sum reconstructs
// the cumulative series.
type HistSnapshot struct {
	Buckets map[int]int64
	Count   int64
	Sum     int64
}

// Merge returns the combination of s and o (associative, commutative).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	if len(s.Buckets)+len(o.Buckets) > 0 {
		out.Buckets = make(map[int]int64, len(s.Buckets)+len(o.Buckets))
		for i, n := range s.Buckets {
			out.Buckets[i] += n
		}
		for i, n := range o.Buckets {
			out.Buckets[i] += n
		}
	}
	return out
}

// Sub returns s minus an earlier snapshot of the same histogram — the
// per-interval delta a periodic flusher records.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i, n := range s.Buckets {
		if d := n - prev.Buckets[i]; d != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64, len(s.Buckets))
			}
			out.Buckets[i] = d
		}
	}
	return out
}

// Mean returns the arithmetic mean of the recorded samples (0 if none).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// samples: the bucket holding the rank is located and the estimate
// interpolated linearly within its bounds, so the estimate is always
// inside the true value's bucket — within 1/histSub relative error.
// Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=0 means the minimum.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			// Interpolate by the rank's position within the bucket.
			frac := float64(rank-seen-1) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += n
	}
	return 0
}

// QuantileBounds returns the bucket bounds [lo, hi) containing the
// q-quantile — the error interval any exact-oracle comparison must land
// in. Returns (0, 0) when empty.
func (s HistSnapshot) QuantileBounds(q float64) (lo, hi int64) {
	if s.Count == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			return bucketBounds(i)
		}
		seen += n
	}
	return 0, 0
}
