package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T, reg *Registry, bus *Bus) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", ServerOptions{Registry: reg, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerMetrics: /metrics serves the Prometheus text format —
// sanitized names, TYPE lines, cumulative le-buckets summing to _count.
func TestServerMetrics(t *testing.T) {
	reg := &Registry{}
	reg.Counter("campaign.runs", "status", "done").Add(4)
	reg.Gauge("pool.depth").Set(2)
	h := reg.Histogram("dispatch.ns")
	for _, v := range []int64{100, 1000, 10_000, 10_000} {
		h.Observe(v)
	}
	srv := startServer(t, reg, nil)

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE campaign_runs counter",
		`campaign_runs{status="done"} 4`,
		"# TYPE pool_depth gauge",
		"pool_depth 2",
		"# TYPE dispatch_ns histogram",
		`dispatch_ns_bucket{le="+Inf"} 4`,
		"dispatch_ns_sum 21100",
		"dispatch_ns_count 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// le-buckets are cumulative: the counts along the series never
	// decrease.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "dispatch_ns_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if n < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = n
	}
	if srv.Scrapes() != 1 {
		t.Errorf("Scrapes() = %d, want 1", srv.Scrapes())
	}
}

// TestServerVars: /debug/vars returns the JSON snapshot keyed by
// canonical metric names.
func TestServerVars(t *testing.T) {
	reg := &Registry{}
	reg.Counter("runs").Add(7)
	reg.Histogram("lat").Observe(500)
	srv := startServer(t, reg, nil)

	code, body := get(t, srv.URL()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var doc struct {
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if v, _ := doc.Metrics["runs"].(float64); v != 7 {
		t.Errorf("runs = %v, want 7", doc.Metrics["runs"])
	}
	hist, _ := doc.Metrics["lat"].(map[string]any)
	if hist == nil || hist["count"].(float64) != 1 {
		t.Errorf("lat histogram = %v", doc.Metrics["lat"])
	}
}

// TestServerHealth: /healthz flips to 503 with the reason and back.
func TestServerHealth(t *testing.T) {
	srv := startServer(t, &Registry{}, nil)
	if code, body := get(t, srv.URL()+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %s", code, body)
	}
	srv.SetUnhealthy("runs timing out")
	if code, body := get(t, srv.URL()+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "runs timing out") {
		t.Fatalf("unhealthy: %d %s", code, body)
	}
	srv.SetUnhealthy("")
	if code, _ := get(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("recovered: %d", code)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    int64
	event string
	data  Event
}

// readFrame parses the next id/event/data frame off the stream.
func readFrame(t *testing.T, r *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended mid-frame: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && f.event != "":
			return f
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &f.id)
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		}
	}
}

// TestServerSSE: /events streams bus events in order as id/event/data
// frames; ?replay hands a late joiner the recent history first, and
// events published after the connection continue the same sequence.
func TestServerSSE(t *testing.T) {
	bus := &Bus{}
	srv := startServer(t, &Registry{}, bus)

	for i := 0; i < 3; i++ {
		bus.Publish(Event{Type: "run", Run: fmt.Sprintf("spec-%d", i), Status: "done"})
	}
	resp, err := http.Get(srv.URL() + "/events?replay=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	for want := int64(1); want <= 3; want++ {
		f := readFrame(t, r)
		if f.id != want || f.data.Seq != want || f.event != "run" {
			t.Fatalf("replay frame = %+v, want seq %d", f, want)
		}
	}
	// Having read a replayed frame proves the subscription is attached;
	// live publishes now continue the stream.
	bus.Publish(Event{Type: "heartbeat", Finished: 3, Total: 5, InFlight: 1})
	f := readFrame(t, r)
	if f.id != 4 || f.event != "heartbeat" || f.data.Finished != 3 || f.data.InFlight != 1 {
		t.Fatalf("live frame = %+v", f)
	}
	bus.Publish(Event{Type: "campaign", Status: "finished"})
	if f := readFrame(t, r); f.id != 5 || f.event != "campaign" || f.data.Status != "finished" {
		t.Fatalf("final frame = %+v", f)
	}
}

// TestServerSSEWithoutBus: /events 404s when no bus is wired.
func TestServerSSEWithoutBus(t *testing.T) {
	srv := startServer(t, &Registry{}, nil)
	if code, _ := get(t, srv.URL()+"/events"); code != http.StatusNotFound {
		t.Fatalf("/events without bus: %d, want 404", code)
	}
}
