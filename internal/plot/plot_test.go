package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(100, 80)
	c.Line(0, 0, 100, 80, "#000", 1)
	c.DashedLine(0, 80, 100, 0, "#333")
	c.Rect(10, 10, 20, 20, "#f00")
	c.Rect(30, 30, -10, -10, "#0f0") // negative extents normalize
	c.Circle(50, 40, 5, "#00f")
	c.Text(50, 40, "a<b&c", "middle", 10)
	c.TextRotated(10, 70, "rot", -90, 8)
	out := c.String()
	for _, frag := range []string{"<svg", "</svg>", "<line", "<rect", "<circle",
		"a&lt;b&amp;c", `rotate(-90`, `stroke-dasharray`} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	if strings.Contains(out, `width="-`) {
		t.Error("negative rect width leaked into SVG")
	}
}

func TestCanvasWriteFile(t *testing.T) {
	dir := t.TempDir()
	c := NewCanvas(10, 10)
	path := filepath.Join(dir, "sub", "fig.svg")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file does not start with <svg")
	}
}

func TestScatterRender(t *testing.T) {
	p := Scatter{
		Title: "roofline", XLabel: "intensity", YLabel: "GIPS",
		LogX: true, LogY: true,
		Ceilings: []CeilingLine{{Name: "roof", Slope: 437.5, Flat: 489.6}},
		Series: []Series{
			{Name: "Stream", Points: []Point{{X: 0.1, Y: 30}, {X: 0.2, Y: 60}}},
			{Name: "Apps", Points: []Point{{X: 5, Y: 400}}},
		},
	}
	out := p.Render()
	for _, frag := range []string{"roofline", "Stream", "Apps", "intensity", "GIPS", "1e"} {
		if !strings.Contains(out, frag) {
			t.Errorf("scatter missing %q", frag)
		}
	}
	// Nonpositive points must be dropped on log axes, not crash.
	p.Series[0].Points = append(p.Series[0].Points, Point{X: 0, Y: -1})
	if out := p.Render(); !strings.Contains(out, "</svg>") {
		t.Error("render with nonpositive log point failed")
	}
}

func TestScatterDiagonalAndEmpty(t *testing.T) {
	p := Scatter{Title: "empty", Diagonal: true}
	if out := p.Render(); !strings.Contains(out, "</svg>") {
		t.Error("empty scatter must still render")
	}
}

func TestStackedBarsRender(t *testing.T) {
	p := StackedBars{
		Title:      "topdown",
		YLabel:     "% slots",
		Categories: []string{"TRIAD", "DAXPY", "GEMM"},
		Stacks: []BarStack{
			{Label: "memory", Values: []float64{0.9, 0.85, 0.1}},
			{Label: "core", Values: []float64{0.05, 0.1, 0.8}},
			{Label: "retiring", Values: []float64{0.05, 0.05, 0.1}},
		},
	}
	out := p.Render()
	for _, frag := range []string{"topdown", "TRIAD", "GEMM", "memory", "retiring"} {
		if !strings.Contains(out, frag) {
			t.Errorf("bars missing %q", frag)
		}
	}
	// Stacks normalize: total bar heights must not exceed the plot area,
	// i.e. no rect with absurd height appears.
	if strings.Contains(out, `height="-`) {
		t.Error("negative bar height")
	}
}

func TestAxisTicks(t *testing.T) {
	lin := axis{lo: 0, hi: 10, p0: 0, p1: 100}
	if got := len(lin.ticks()); got != 6 {
		t.Errorf("linear ticks = %d, want 6", got)
	}
	log := axis{lo: 0.1, hi: 1000, p0: 0, p1: 100, log: true}
	ticks := log.ticks()
	if len(ticks) != 5 { // 0.1, 1, 10, 100, 1000
		t.Errorf("log ticks = %v", ticks)
	}
	if tickLabel(100, true) != "1e2" {
		t.Errorf("log tick label = %s", tickLabel(100, true))
	}
	// pos clamps outside the domain.
	if p := lin.pos(-5); p != 0 {
		t.Errorf("clamped pos = %v", p)
	}
	if p := lin.pos(50); p != 100 {
		t.Errorf("clamped pos = %v", p)
	}
}
