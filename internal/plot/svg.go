// Package plot renders the paper's figure types — scatter plots with
// roofline ceilings, stacked metric bars, and dendrograms — as
// self-contained SVG documents using only the standard library. The
// experiment harness uses it to emit fig*.svg files alongside the text
// tables.
package plot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Canvas accumulates SVG elements on a fixed pixel grid.
type Canvas struct {
	W, H int
	b    strings.Builder
}

// NewCanvas returns an empty canvas of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{W: w, H: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

// Line draws a straight segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// DashedLine draws a dashed segment.
func (c *Canvas) DashedLine(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="4,3"/>`+"\n",
		x1, y1, x2, y2, stroke)
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string) {
	if w < 0 {
		x, w = x+w, -w
	}
	if h < 0 {
		y, h = y+h, -h
	}
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

// Circle draws a filled circle.
func (c *Canvas) Circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

// Text places a label. Anchor is "start", "middle", or "end".
func (c *Canvas) Text(x, y float64, s, anchor string, size int) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="%s" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
		x, y, anchor, size, escape(s))
}

// TextRotated places a label rotated by deg around its anchor point.
func (c *Canvas) TextRotated(x, y float64, s string, deg float64, size int) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="%d" transform="rotate(%.0f %.1f %.1f)">%s</text>`+"\n",
		x, y, size, deg, x, y, escape(s))
}

// String finalizes and returns the SVG document.
func (c *Canvas) String() string { return c.b.String() + "</svg>\n" }

// WriteFile writes the document, creating parent directories.
func (c *Canvas) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("plot: %w", err)
		}
	}
	return os.WriteFile(path, []byte(c.String()), 0o644)
}

// WriteSVGFile writes an already-rendered SVG document to path, creating
// parent directories.
func WriteSVGFile(path, svg string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("plot: %w", err)
		}
	}
	return os.WriteFile(path, []byte(svg), 0o644)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Palette is the default categorical color cycle.
var Palette = []string{
	"#4363d8", "#e6194B", "#3cb44b", "#f58231", "#911eb4",
	"#42d4f4", "#bfef45", "#f032e6", "#9A6324", "#469990",
}

// axis maps data coordinates onto a pixel interval, optionally
// logarithmically.
type axis struct {
	lo, hi   float64
	p0, p1   float64
	log      bool
	reversed bool
}

func (a axis) pos(v float64) float64 {
	lo, hi, x := a.lo, a.hi, v
	if a.log {
		lo, hi, x = math.Log10(lo), math.Log10(hi), math.Log10(v)
	}
	f := (x - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	if a.reversed {
		f = 1 - f
	}
	return a.p0 + f*(a.p1-a.p0)
}

// ticks returns tick values for the axis: decades when logarithmic, five
// even steps otherwise.
func (a axis) ticks() []float64 {
	if a.log {
		var out []float64
		for d := math.Floor(math.Log10(a.lo)); d <= math.Ceil(math.Log10(a.hi)); d++ {
			v := math.Pow(10, d)
			if v >= a.lo*0.999 && v <= a.hi*1.001 {
				out = append(out, v)
			}
		}
		return out
	}
	out := make([]float64, 0, 6)
	for i := 0; i <= 5; i++ {
		out = append(out, a.lo+(a.hi-a.lo)*float64(i)/5)
	}
	return out
}

func tickLabel(v float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%d", int(math.Round(math.Log10(v))))
	}
	return fmt.Sprintf("%.3g", v)
}
