package plot

import (
	"fmt"
	"math"
)

// Point is one scatter marker.
type Point struct {
	X, Y  float64
	Label string
}

// Series is a named, colored point set.
type Series struct {
	Name   string
	Color  string // empty = palette by index
	Points []Point
}

// CeilingLine is a reference line for roofline plots: y = min(Slope*x, Flat).
type CeilingLine struct {
	Name  string
	Slope float64 // diagonal: y = Slope * x (0 = none)
	Flat  float64 // horizontal roof (0 = none)
}

// Scatter describes a scatter plot with optional log axes, reference
// ceilings, and a y=x diagonal (Fig 5 rooflines, Fig 10 panels).
type Scatter struct {
	Title, XLabel, YLabel string
	LogX, LogY            bool
	Diagonal              bool // draw y = x (Fig 10's dashed diagonal)
	Ceilings              []CeilingLine
	Series                []Series
	W, H                  int // 0 = 720x520
}

// Render draws the scatter as an SVG document.
func (p *Scatter) Render() string {
	w, h := p.W, p.H
	if w == 0 {
		w, h = 720, 520
	}
	c := NewCanvas(w, h)
	const ml, mr, mt, mb = 70, 160, 40, 55
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if p.LogX && pt.X <= 0 || p.LogY && pt.Y <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, pt.X), math.Max(xmax, pt.X)
			ymin, ymax = math.Min(ymin, pt.Y), math.Max(ymax, pt.Y)
		}
	}
	for _, cl := range p.Ceilings {
		if cl.Flat > 0 {
			ymax = math.Max(ymax, cl.Flat)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0.1, 1, 0.1, 1
	}
	xmin, xmax = pad(xmin, xmax, p.LogX)
	ymin, ymax = pad(ymin, ymax, p.LogY)
	ax := axis{lo: xmin, hi: xmax, p0: ml, p1: float64(w - mr), log: p.LogX}
	ay := axis{lo: ymin, hi: ymax, p0: float64(h - mb), p1: mt, log: p.LogY}

	c.Text(float64(w)/2, 22, p.Title, "middle", 14)
	frame(c, ax, ay, p.XLabel, p.YLabel)

	if p.Diagonal {
		drawCurve(c, ax, ay, func(x float64) float64 { return x }, "#888888")
	}
	for _, cl := range p.Ceilings {
		cl := cl
		if cl.Slope > 0 && cl.Flat > 0 {
			drawCurve(c, ax, ay, func(x float64) float64 {
				return math.Min(cl.Slope*x, cl.Flat)
			}, "#444444")
		} else if cl.Flat > 0 {
			y := ay.pos(cl.Flat)
			c.DashedLine(ax.p0, y, ax.p1, y, "#444444")
		} else if cl.Slope > 0 {
			drawCurve(c, ax, ay, func(x float64) float64 { return cl.Slope * x }, "#444444")
		}
		if cl.Name != "" {
			c.Text(ax.p1+4, ay.pos(cl.Flat)+4, cl.Name, "start", 10)
		}
	}

	for i, s := range p.Series {
		color := s.Color
		if color == "" {
			color = Palette[i%len(Palette)]
		}
		for _, pt := range s.Points {
			if p.LogX && pt.X <= 0 || p.LogY && pt.Y <= 0 {
				continue
			}
			c.Circle(ax.pos(pt.X), ay.pos(pt.Y), 3.2, color)
		}
		// Legend column on the right margin.
		ly := float64(mt + 14*i)
		c.Circle(float64(w-mr)+14, ly, 4, color)
		c.Text(float64(w-mr)+22, ly+4, s.Name, "start", 11)
	}
	return c.String()
}

func pad(lo, hi float64, log bool) (float64, float64) {
	if log {
		return lo / 2, hi * 2
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	l := lo - 0.05*span
	if lo >= 0 && l < 0 {
		l = 0
	}
	return l, hi + 0.05*span
}

func frame(c *Canvas, ax, ay axis, xlabel, ylabel string) {
	c.Line(ax.p0, ay.p0, ax.p1, ay.p0, "#000000", 1) // x axis
	c.Line(ax.p0, ay.p0, ax.p0, ay.p1, "#000000", 1) // y axis
	for _, t := range ax.ticks() {
		x := ax.pos(t)
		c.Line(x, ay.p0, x, ay.p0+4, "#000000", 1)
		c.Text(x, ay.p0+16, tickLabel(t, ax.log), "middle", 10)
	}
	for _, t := range ay.ticks() {
		y := ay.pos(t)
		c.Line(ax.p0-4, y, ax.p0, y, "#000000", 1)
		c.Text(ax.p0-6, y+3, tickLabel(t, ay.log), "end", 10)
	}
	c.Text((ax.p0+ax.p1)/2, ay.p0+34, xlabel, "middle", 12)
	c.TextRotated(ax.p0-46, (ay.p0+ay.p1)/2, ylabel, -90, 12)
}

func drawCurve(c *Canvas, ax, ay axis, f func(float64) float64, color string) {
	const steps = 64
	for i := 0; i < steps; i++ {
		x1 := sample(ax, float64(i)/steps)
		x2 := sample(ax, float64(i+1)/steps)
		y1, y2 := f(x1), f(x2)
		if y1 < ay.lo && y2 < ay.lo || y1 > ay.hi && y2 > ay.hi {
			continue
		}
		c.DashedLine(ax.pos(x1), ay.pos(y1), ax.pos(x2), ay.pos(y2), color)
	}
}

func sample(a axis, f float64) float64 {
	if a.log {
		return math.Pow(10, math.Log10(a.lo)+f*(math.Log10(a.hi)-math.Log10(a.lo)))
	}
	return a.lo + f*(a.hi-a.lo)
}

// StackedBars describes one stacked horizontal-category bar chart: one bar
// per category, each split into the named stacks (the Fig 3/4 top-down
// charts: one bar per kernel, stacked by TMA category).
type StackedBars struct {
	Title      string
	Categories []string
	Stacks     []BarStack
	YLabel     string
	W, H       int
}

// BarStack is one layer across all categories.
type BarStack struct {
	Label  string
	Color  string
	Values []float64 // one per category
}

// Render draws the chart as an SVG document.
func (p *StackedBars) Render() string {
	w, h := p.W, p.H
	if w == 0 {
		w = 40 + 14*len(p.Categories) + 170
		h = 460
	}
	c := NewCanvas(w, h)
	const ml, mt = 60, 40
	mb := 150
	plotW := float64(w - ml - 180)
	plotH := float64(h - mt - mb)

	// Total height per category normalizes the stack.
	maxTotal := 0.0
	for i := range p.Categories {
		t := 0.0
		for _, st := range p.Stacks {
			t += st.Values[i]
		}
		maxTotal = math.Max(maxTotal, t)
	}
	if maxTotal == 0 {
		maxTotal = 1
	}

	c.Text(float64(w)/2, 22, p.Title, "middle", 14)
	c.Line(float64(ml), mt+plotH, float64(ml)+plotW, mt+plotH, "#000", 1)
	c.Line(float64(ml), mt+plotH, float64(ml), mt, "#000", 1)
	for i := 0; i <= 5; i++ {
		v := maxTotal * float64(i) / 5
		y := mt + plotH*(1-v/maxTotal)
		c.Line(float64(ml)-4, y, float64(ml), y, "#000", 1)
		c.Text(float64(ml)-6, y+3, fmt.Sprintf("%.2g", v), "end", 10)
	}
	c.TextRotated(float64(ml)-40, mt+plotH/2, p.YLabel, -90, 12)

	barW := plotW / float64(len(p.Categories))
	for i, cat := range p.Categories {
		x := float64(ml) + barW*float64(i)
		y := mt + plotH
		for si, st := range p.Stacks {
			color := st.Color
			if color == "" {
				color = Palette[si%len(Palette)]
			}
			hgt := plotH * st.Values[i] / maxTotal
			c.Rect(x+1, y-hgt, barW-2, hgt, color)
			y -= hgt
		}
		c.TextRotated(x+barW/2+3, mt+plotH+8, cat, -60, 8)
	}
	for si, st := range p.Stacks {
		color := st.Color
		if color == "" {
			color = Palette[si%len(Palette)]
		}
		ly := float64(mt + 16*si)
		c.Rect(float64(w)-165, ly-8, 10, 10, color)
		c.Text(float64(w)-150, ly, st.Label, "start", 11)
	}
	return c.String()
}
