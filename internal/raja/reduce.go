package raja

// cacheLinePad separates per-worker reduction lanes to avoid false sharing.
const lanePad = 8 // 8 float64 = 64 bytes

// Number is the constraint satisfied by the value types the suite reduces.
type Number interface {
	~int | ~int32 | ~int64 | ~float32 | ~float64
}

// ReduceSum accumulates a sum across loop iterations. Each worker lane
// accumulates privately; Get combines lanes with the initial value.
// It mirrors RAJA::ReduceSum.
type ReduceSum[T Number] struct {
	init  T
	lanes []T
}

// NewReduceSum returns a sum reducer with the given initial value, sized
// for the worker count of p.
func NewReduceSum[T Number](p Policy, init T) *ReduceSum[T] {
	return &ReduceSum[T]{init: init, lanes: make([]T, p.MaxWorkers()*lanePad)}
}

// Add accumulates v into the calling worker's lane.
func (r *ReduceSum[T]) Add(c Ctx, v T) { r.lanes[c.Worker*lanePad] += v }

// Get returns the combined reduction value.
func (r *ReduceSum[T]) Get() T {
	s := r.init
	for i := 0; i < len(r.lanes); i += lanePad {
		s += r.lanes[i]
	}
	return s
}

// Reset clears the lanes and sets a new initial value.
func (r *ReduceSum[T]) Reset(init T) {
	r.init = init
	for i := range r.lanes {
		r.lanes[i] = 0
	}
}

// ReduceMin tracks a minimum across loop iterations (RAJA::ReduceMin).
// Lanes start unset, so no sentinel value is needed for any element type.
type ReduceMin[T Number] struct {
	init  T
	lanes []T
	set   []bool
}

// NewReduceMin returns a min reducer with the given initial value.
func NewReduceMin[T Number](p Policy, init T) *ReduceMin[T] {
	n := p.MaxWorkers() * lanePad
	return &ReduceMin[T]{init: init, lanes: make([]T, n), set: make([]bool, n)}
}

// Min folds v into the calling worker's lane.
func (r *ReduceMin[T]) Min(c Ctx, v T) {
	k := c.Worker * lanePad
	if !r.set[k] || v < r.lanes[k] {
		r.lanes[k], r.set[k] = v, true
	}
}

// Get returns the combined minimum.
func (r *ReduceMin[T]) Get() T {
	m := r.init
	for i := 0; i < len(r.lanes); i += lanePad {
		if r.set[i] && r.lanes[i] < m {
			m = r.lanes[i]
		}
	}
	return m
}

// ReduceMax tracks a maximum across loop iterations (RAJA::ReduceMax).
type ReduceMax[T Number] struct {
	init  T
	lanes []T
	set   []bool
}

// NewReduceMax returns a max reducer with the given initial value.
func NewReduceMax[T Number](p Policy, init T) *ReduceMax[T] {
	n := p.MaxWorkers() * lanePad
	return &ReduceMax[T]{init: init, lanes: make([]T, n), set: make([]bool, n)}
}

// Max folds v into the calling worker's lane.
func (r *ReduceMax[T]) Max(c Ctx, v T) {
	k := c.Worker * lanePad
	if !r.set[k] || v > r.lanes[k] {
		r.lanes[k], r.set[k] = v, true
	}
}

// Get returns the combined maximum.
func (r *ReduceMax[T]) Get() T {
	m := r.init
	for i := 0; i < len(r.lanes); i += lanePad {
		if r.set[i] && r.lanes[i] > m {
			m = r.lanes[i]
		}
	}
	return m
}

// MinLoc pairs a value with the index where it occurred.
type MinLoc[T Number] struct {
	Val T
	Loc int
}

// ReduceMinLoc tracks the minimum value and its first location
// (RAJA::ReduceMinLoc). Ties resolve to the smallest index so results are
// deterministic across policies.
type ReduceMinLoc[T Number] struct {
	init  MinLoc[T]
	lanes []MinLoc[T]
	set   []bool
}

// NewReduceMinLoc returns a min-loc reducer with the given initial value.
func NewReduceMinLoc[T Number](p Policy, init T, loc int) *ReduceMinLoc[T] {
	n := p.MaxWorkers() * lanePad
	return &ReduceMinLoc[T]{
		init:  MinLoc[T]{init, loc},
		lanes: make([]MinLoc[T], n),
		set:   make([]bool, n),
	}
}

// MinLoc folds (v, i) into the calling worker's lane.
func (r *ReduceMinLoc[T]) MinLoc(c Ctx, v T, i int) {
	k := c.Worker * lanePad
	l := &r.lanes[k]
	if !r.set[k] || v < l.Val || (v == l.Val && i < l.Loc) {
		l.Val, l.Loc = v, i
		r.set[k] = true
	}
}

// Get returns the combined (value, location) pair.
func (r *ReduceMinLoc[T]) Get() MinLoc[T] {
	m := r.init
	for i := 0; i < len(r.lanes); i += lanePad {
		if !r.set[i] {
			continue
		}
		l := r.lanes[i]
		if l.Val < m.Val || (l.Val == m.Val && l.Loc < m.Loc) {
			m = l
		}
	}
	return m
}

// MultiReduceSum accumulates nbins independent sums, the abstraction behind
// the suite's MULTI_REDUCE and HISTOGRAM kernels (RAJA::MultiReduceSum).
type MultiReduceSum[T Number] struct {
	bins  int
	lanes [][]T
}

// NewMultiReduceSum returns a multi-bin sum reducer.
func NewMultiReduceSum[T Number](p Policy, bins int) *MultiReduceSum[T] {
	m := &MultiReduceSum[T]{bins: bins}
	m.lanes = make([][]T, p.MaxWorkers())
	for i := range m.lanes {
		m.lanes[i] = make([]T, bins)
	}
	return m
}

// Add accumulates v into bin b of the calling worker's lane.
func (m *MultiReduceSum[T]) Add(c Ctx, b int, v T) { m.lanes[c.Worker][b] += v }

// Get returns the combined value of bin b.
func (m *MultiReduceSum[T]) Get(b int) T {
	var s T
	for _, l := range m.lanes {
		s += l[b]
	}
	return s
}

// GetAll combines all bins into dst, which must have length bins.
func (m *MultiReduceSum[T]) GetAll(dst []T) {
	for b := range dst {
		dst[b] = 0
	}
	for _, l := range m.lanes {
		for b, v := range l {
			dst[b] += v
		}
	}
}

// MaxLoc pairs a value with the index where it occurred.
type MaxLoc[T Number] struct {
	Val T
	Loc int
}

// ReduceMaxLoc tracks the maximum value and its first location
// (RAJA::ReduceMaxLoc). Ties resolve to the smallest index so results are
// deterministic across policies.
type ReduceMaxLoc[T Number] struct {
	init  MaxLoc[T]
	lanes []MaxLoc[T]
	set   []bool
}

// NewReduceMaxLoc returns a max-loc reducer with the given initial value.
func NewReduceMaxLoc[T Number](p Policy, init T, loc int) *ReduceMaxLoc[T] {
	n := p.MaxWorkers() * lanePad
	return &ReduceMaxLoc[T]{
		init:  MaxLoc[T]{init, loc},
		lanes: make([]MaxLoc[T], n),
		set:   make([]bool, n),
	}
}

// MaxLoc folds (v, i) into the calling worker's lane.
func (r *ReduceMaxLoc[T]) MaxLoc(c Ctx, v T, i int) {
	k := c.Worker * lanePad
	l := &r.lanes[k]
	if !r.set[k] || v > l.Val || (v == l.Val && i < l.Loc) {
		l.Val, l.Loc = v, i
		r.set[k] = true
	}
}

// Get returns the combined (value, location) pair.
func (r *ReduceMaxLoc[T]) Get() MaxLoc[T] {
	m := r.init
	for i := 0; i < len(r.lanes); i += lanePad {
		if !r.set[i] {
			continue
		}
		l := r.lanes[i]
		if l.Val > m.Val || (l.Val == m.Val && l.Loc < m.Loc) {
			m = l
		}
	}
	return m
}
