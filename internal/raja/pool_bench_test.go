package raja

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkForallPar compares the persistent-pool executor against the
// goroutine-per-call baseline (the pre-pool implementation, kept as the
// spawn fallback) for a daxpy-shaped parallel forall across problem
// sizes. The pool's win is dispatch cost: at small n the goroutine-spawn
// path is dominated by per-call scheduling, exactly the per-invocation
// overhead pSTL-Bench attributes to parallel-STL back-ends.
//
// Both paths run with a fixed lane count so the dispatch machinery is
// exercised identically on any host; with default (GOMAXPROCS-sized)
// workers a single-core machine would degenerate both paths to the
// inline sequential loop and measure nothing.
//
//	go test -bench BenchmarkForallPar -benchmem ./internal/raja/
func BenchmarkForallPar(b *testing.B) {
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		body := func(c Ctx, i int) { y[i] += 2.0 * x[i] }
		chunk := (n + lanes - 1) / lanes
		chunks := (n + chunk - 1) / chunk

		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			pool := NewPool(lanes)
			defer pool.Close()
			p := Policy{Kind: Par, Workers: lanes, Pool: pool}
			Forall(p, n, body) // start the workers outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Forall(p, n, body)
			}
		})

		b.Run(fmt.Sprintf("spawn/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spawnForallStatic(RangeN(n), body, chunks, chunk, nil, nil)
			}
		})
	}
}

// BenchmarkForallGPU compares pooled and spawned dynamic (block-cursor)
// dispatch, the GPU back-end shape.
func BenchmarkForallGPU(b *testing.B) {
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	for _, n := range []int{10_000, 1_000_000} {
		y := make([]float64, n)
		body := func(c Ctx, i int) { y[i] += 1 }

		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			pool := NewPool(lanes)
			defer pool.Close()
			p := Policy{Kind: GPU, Workers: lanes, Pool: pool}
			Forall(p, n, body)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Forall(p, n, body)
			}
		})

		b.Run(fmt.Sprintf("spawn/n=%d", n), func(b *testing.B) {
			workers := lanes
			blocks := (n + DefaultBlock - 1) / DefaultBlock
			if workers > blocks {
				workers = blocks
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spawnForallDynamic(RangeN(n), body, DefaultBlock, workers, nil, nil)
			}
		})
	}
}

// BenchmarkForallSchedules compares the three schedules on uniform work,
// where static should win (no cursor traffic) and guided should beat
// dynamic's per-block CAS.
func BenchmarkForallSchedules(b *testing.B) {
	const n = 100_000
	y := make([]float64, n)
	body := func(c Ctx, i int) { y[i] += 1 }
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		b.Run(sched.String(), func(b *testing.B) {
			pool := NewPool(lanes)
			defer pool.Close()
			p := Policy{Kind: Par, Workers: lanes, Schedule: sched, Pool: pool}
			Forall(p, n, body)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Forall(p, n, body)
			}
		})
	}
}

// BenchmarkPoolDispatch measures raw dispatch latency: an empty-body
// parallel region, pool versus spawn.
func BenchmarkPoolDispatch(b *testing.B) {
	body := func(c Ctx, i int) {}
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	n := 64 * lanes
	chunk := (n + lanes - 1) / lanes
	chunks := (n + chunk - 1) / chunk
	b.Run("pool", func(b *testing.B) {
		pool := NewPool(lanes)
		defer pool.Close()
		p := Policy{Kind: Par, Workers: lanes, Pool: pool}
		Forall(p, n, body)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Forall(p, n, body)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spawnForallStatic(RangeN(n), body, chunks, chunk, nil, nil)
		}
	})
}
