package raja

import (
	"sync/atomic"
	"testing"
)

// TestPoolHeartbeatAdvances checks the liveness counter the campaign
// watchdog samples: every pooled dispatch must advance it at granule
// granularity, and it must be monotonic.
func TestPoolHeartbeatAdvances(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	if pool.Heartbeat() != 0 {
		t.Fatalf("fresh pool heartbeat = %d, want 0", pool.Heartbeat())
	}

	var n atomic.Int64
	p := Policy{Kind: Par, Workers: 4, Pool: pool}
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		p.Schedule = sched
		before := pool.Heartbeat()
		Forall(p, 1024, func(c Ctx, i int) { n.Add(1) })
		after := pool.Heartbeat()
		if after <= before {
			t.Errorf("schedule %v: heartbeat did not advance (%d -> %d)", sched, before, after)
		}
	}
	if n.Load() != 3*1024 {
		t.Fatalf("iterations = %d, want %d", n.Load(), 3*1024)
	}
}

// TestPoolHeartbeatSpawnFallback: a dispatch that cannot use the pool
// (nested region) still advances the heartbeat once per dispatch, so a
// watchdog never sees a silent executor.
func TestPoolHeartbeatSpawnFallback(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()

	p := Policy{Kind: Par, Workers: 2, Pool: pool}
	before := pool.Heartbeat()
	var inner atomic.Int64
	Forall(p, 8, func(c Ctx, i int) {
		// The nested dispatch finds the pool busy and takes the spawn
		// fallback, which must still tick the heartbeat.
		Forall(p, 64, func(c Ctx, j int) { inner.Add(1) })
	})
	if inner.Load() != 8*64 {
		t.Fatalf("inner iterations = %d, want %d", inner.Load(), 8*64)
	}
	if pool.Heartbeat() <= before {
		t.Error("heartbeat did not advance across nested dispatches")
	}
}
