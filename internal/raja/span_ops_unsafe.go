//go:build rajaunsafe

package raja

import "unsafe"

// Pointer-walking variants of the unit-stride span kernels, selected by
// -tags rajaunsafe. Bounds are validated once per span (an explicit index
// of the last element), then the loop advances raw element pointers, so
// no per-iteration bounds checks or slice-header loads remain. The
// answers are bit-identical to the safe variants — same operations in
// the same order — which kerneltest asserts when CI runs the corpus
// under this tag.

const f64size = unsafe.Sizeof(float64(0))

// TriadSpan computes a[i] = b[i] + alpha*c[i] for i in [lo, hi).
func TriadSpan(a, b, c []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	_, _, _ = a[hi-1], b[hi-1], c[hi-1]
	pa := unsafe.Pointer(&a[lo])
	pb := unsafe.Pointer(&b[lo])
	pc := unsafe.Pointer(&c[lo])
	for n := hi - lo; n > 0; n-- {
		*(*float64)(pa) = *(*float64)(pb) + alpha**(*float64)(pc)
		pa = unsafe.Add(pa, f64size)
		pb = unsafe.Add(pb, f64size)
		pc = unsafe.Add(pc, f64size)
	}
}

// AddSpan computes dst[i] = a[i] + b[i] for i in [lo, hi).
func AddSpan(dst, a, b []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	_, _, _ = dst[hi-1], a[hi-1], b[hi-1]
	pd := unsafe.Pointer(&dst[lo])
	pa := unsafe.Pointer(&a[lo])
	pb := unsafe.Pointer(&b[lo])
	for n := hi - lo; n > 0; n-- {
		*(*float64)(pd) = *(*float64)(pa) + *(*float64)(pb)
		pd = unsafe.Add(pd, f64size)
		pa = unsafe.Add(pa, f64size)
		pb = unsafe.Add(pb, f64size)
	}
}

// CopySpan computes dst[i] = src[i] for i in [lo, hi).
func CopySpan(dst, src []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	copy(dst[lo:hi], src[lo:hi])
}

// ScaleSpan computes dst[i] = alpha * src[i] for i in [lo, hi).
func ScaleSpan(dst, src []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	_, _ = dst[hi-1], src[hi-1]
	pd := unsafe.Pointer(&dst[lo])
	ps := unsafe.Pointer(&src[lo])
	for n := hi - lo; n > 0; n-- {
		*(*float64)(pd) = alpha * *(*float64)(ps)
		pd = unsafe.Add(pd, f64size)
		ps = unsafe.Add(ps, f64size)
	}
}

// AxpySpan computes y[i] += alpha * x[i] for i in [lo, hi).
func AxpySpan(y, x []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	_, _ = y[hi-1], x[hi-1]
	py := unsafe.Pointer(&y[lo])
	px := unsafe.Pointer(&x[lo])
	for n := hi - lo; n > 0; n-- {
		*(*float64)(py) += alpha * *(*float64)(px)
		py = unsafe.Add(py, f64size)
		px = unsafe.Add(px, f64size)
	}
}

// FillSpan sets dst[i] = v for i in [lo, hi).
func FillSpan(dst []float64, v float64, lo, hi int) {
	if lo >= hi {
		return
	}
	_ = dst[hi-1]
	pd := unsafe.Pointer(&dst[lo])
	for n := hi - lo; n > 0; n-- {
		*(*float64)(pd) = v
		pd = unsafe.Add(pd, f64size)
	}
}

// DotSpan returns the ascending-order sum of a[i]*b[i] over [lo, hi).
func DotSpan(a, b []float64, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	_, _ = a[hi-1], b[hi-1]
	pa := unsafe.Pointer(&a[lo])
	pb := unsafe.Pointer(&b[lo])
	var s float64
	for n := hi - lo; n > 0; n-- {
		s += *(*float64)(pa) * *(*float64)(pb)
		pa = unsafe.Add(pa, f64size)
		pb = unsafe.Add(pb, f64size)
	}
	return s
}

// SumSpan returns the ascending-order sum of x[i] over [lo, hi).
func SumSpan(x []float64, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	_ = x[hi-1]
	px := unsafe.Pointer(&x[lo])
	var s float64
	for n := hi - lo; n > 0; n-- {
		s += *(*float64)(px)
		px = unsafe.Add(px, f64size)
	}
	return s
}
