package raja

// Monomorphized dispatch: generic Forall entry points whose loop body is a
// type parameter instead of a closure.
//
// The classic Body path calls an interface-shaped func value once per
// index; Go cannot inline that call across packages, so every iteration
// pays a call, an argument spill, and a lost vectorization opportunity —
// the 2-4x RAJA-vs-Base gap the portability study measured. C++ RAJA does
// not pay it because templates monomorphize the lambda per policy.
//
// Go generics recover the same effect for struct bodies: when B is a
// concrete struct type, ForallRangeG's loop `body.Do(c, i)` compiles to a
// direct, inlinable call in a per-shape instantiation — the loop
// specializes per (policy, schedule, body) combination exactly like a
// template expansion. Pointer-typed bodies share one gcshape dictionary
// and keep an indirect call; pass bodies by value (methods on the struct,
// fields holding the slices) to get the monomorphized loop.
//
// SpanBody goes one step further: the body owns the per-granule loop
// itself, so its code quality no longer depends on the inliner at all —
// the loop inside Span is ordinary straight-line slice code the compiler
// bounds-check-eliminates and vectorizes like a hand-written Base kernel.
// Parallel schedules call Span once per scheduling granule (static chunk,
// dynamic block, guided grab), where the dispatch cost amortizes to
// nothing.

// IndexBody is a loop body invoked once per index, the generic analog of
// Body. Implement it on a struct holding the kernel's slices and scalars
// and pass the struct by value.
type IndexBody interface {
	Do(c Ctx, i int)
}

// SpanBody is a loop body invoked once per scheduling granule with the
// half-open span [lo, hi) to process. The body runs its own inner loop,
// which makes its performance independent of cross-package inlining.
type SpanBody interface {
	Span(c Ctx, lo, hi int)
}

// ForallG executes body.Do for every index in [0, n) under policy p.
// It is the monomorphized counterpart of Forall: identical scheduling,
// Ctx semantics, instrumentation, and fallback behavior.
func ForallG[B IndexBody](p Policy, n int, body B) {
	ForallRangeG(p, RangeN(n), body)
}

// ForallRangeG executes body.Do for every index in r under policy p.
func ForallRangeG[B IndexBody](p Policy, r Range, body B) {
	if r.Len() == 0 {
		return
	}
	if p.Kind == Seq {
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body.Do(c, i)
		}
		return
	}
	forallSpans(p, r, func(c Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			body.Do(c, i)
		}
	})
}

// ForallSpanG executes body.Span over the scheduling granules of [0, n)
// under policy p. One Span call per granule; the body loops itself.
func ForallSpanG[B SpanBody](p Policy, n int, body B) {
	ForallSpanRangeG(p, RangeN(n), body)
}

// ForallSpanRangeG executes body.Span over the scheduling granules of r
// under policy p.
func ForallSpanRangeG[B SpanBody](p Policy, r Range, body B) {
	if r.Len() == 0 {
		return
	}
	if p.Kind == Seq {
		body.Span(Ctx{}, r.Begin, r.End)
		return
	}
	forallSpans(p, r, func(c Ctx, lo, hi int) {
		body.Span(c, lo, hi)
	})
}
