package raja

import "sort"

// Sort sorts x ascending (RAJA::sort). Under parallel policies it sorts
// per-worker chunks concurrently and merges pairwise, with both phases
// dispatched through the policy's worker pool.
func Sort[T Number](p Policy, x []T) {
	workers := p.workers()
	if p.Kind == Seq || workers <= 1 || len(x) < 4*workers {
		sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
		return
	}
	parallelMergeSort(p, x, workers)
}

func parallelMergeSort[T Number](p Policy, x []T, workers int) {
	n := len(x)
	// Round workers down to a power of two so the merge tree is balanced.
	chunks := 1
	for chunks*2 <= workers {
		chunks *= 2
	}
	chunk := (n + chunks - 1) / chunks
	pp := chunkLoopPolicy(p)

	// Sort the chunks concurrently, one chunk per forall index.
	ForallRange(pp, RangeN(chunks), func(_ Ctx, c int) {
		lo, hi := bounds(c, chunk, n)
		if lo < hi {
			s := x[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}
	})

	// Merge pairwise, one merge job per forall index per level.
	src, dst := x, make([]T, n)
	swapped := false
	for width := chunk; width < n; width *= 2 {
		s, d, w := src, dst, width
		pairs := (n + 2*w - 1) / (2 * w)
		ForallRange(pp, RangeN(pairs), func(_ Ctx, k int) {
			lo := k * 2 * w
			mid := lo + w
			hi := lo + 2*w
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			if mid >= hi {
				copy(d[lo:hi], s[lo:hi])
				return
			}
			mergeInto(d[lo:hi], s[lo:mid], s[mid:hi])
		})
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(x, src)
	}
}

// mergeInto merges sorted slices a and b into dst (len(dst) = len(a)+len(b)).
func mergeInto[T Number](dst, a, b []T) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		dst[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		dst[k] = b[j]
		j++
		k++
	}
}

// SortPairs sorts keys ascending and applies the same permutation to vals
// (RAJA::sort_pairs). The sort is stable so equal keys keep their value
// order across policies.
func SortPairs[K Number, V any](p Policy, keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic("raja: SortPairs length mismatch")
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	permute(keys, idx)
	permute(vals, idx)
}

// permute rearranges x so that x'[i] = x[idx[i]].
func permute[T any](x []T, idx []int) {
	out := make([]T, len(x))
	for i, j := range idx {
		out[i] = x[j]
	}
	copy(x, out)
}
