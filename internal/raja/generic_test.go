package raja

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// testSchedules crosses the scheduling axis for conformance tests.
var testSchedules = []Schedule{ScheduleDefault, ScheduleStatic, ScheduleDynamic, ScheduleGuided}

// axpyIdxBody is a struct-typed IndexBody: y[i] += alpha*x[i].
type axpyIdxBody struct {
	y, x  []float64
	alpha float64
}

func (b axpyIdxBody) Do(_ Ctx, i int) { b.y[i] += b.alpha * b.x[i] }

// axpySpanBody is the same kernel as a SpanBody owning its inner loop.
type axpySpanBody struct {
	y, x  []float64
	alpha float64
}

func (b axpySpanBody) Span(_ Ctx, lo, hi int) { AxpySpan(b.y, b.x, b.alpha, lo, hi) }

func fillRamp(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 + float64(i%17)*0.25
	}
	return x
}

// TestGenericMatchesClosureBitwise runs the same elementwise kernel
// through the closure Forall, ForallG, and ForallSpanG paths across all
// policies and schedules and requires bit-identical outputs: elementwise
// bodies touch each index exactly once, so no reassociation can occur.
func TestGenericMatchesClosureBitwise(t *testing.T) {
	const alpha = 0.62
	for _, p := range testPolicies {
		for _, sched := range testSchedules {
			p := p
			p.Schedule = sched
			for _, n := range []int{0, 1, 7, 100, 1023, 4096} {
				x := fillRamp(n)
				want := fillRamp(n)
				Forall(p, n, func(_ Ctx, i int) { want[i] += alpha * x[i] })

				got := fillRamp(n)
				ForallG(p, n, axpyIdxBody{y: got, x: x, alpha: alpha})
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("policy %v sched %v n=%d: ForallG[%d]=%v want %v", p, sched, n, i, got[i], want[i])
					}
				}

				got2 := fillRamp(n)
				ForallSpanG(p, n, axpySpanBody{y: got2, x: x, alpha: alpha})
				for i := range want {
					if math.Float64bits(got2[i]) != math.Float64bits(want[i]) {
						t.Fatalf("policy %v sched %v n=%d: ForallSpanG[%d]=%v want %v", p, sched, n, i, got2[i], want[i])
					}
				}
			}
		}
	}
}

// dotReducer is a fused Reducer computing sum(a[i]*b[i]).
type dotReducer struct {
	a, b []float64
	init float64
}

func (r dotReducer) Init() float64                { return r.init }
func (r dotReducer) Partial(lo, hi int) float64   { return DotSpan(r.a, r.b, lo, hi) }
func (r dotReducer) Combine(a, b float64) float64 { return a + b }

// TestForallReduceMatchesClosure compares the fused reduction against
// the classic Forall+ReduceSum path. Under Seq and static schedules the
// worker→chunk mapping is deterministic and both paths accumulate the
// same ascending association, so results must be bit-identical; dynamic
// and guided schedules reassociate by arrival order, so those compare
// within floating-point tolerance.
func TestForallReduceMatchesClosure(t *testing.T) {
	const init = 3.25
	for _, p := range testPolicies {
		for _, sched := range testSchedules {
			p := p
			p.Schedule = sched
			for _, n := range []int{0, 1, 7, 100, 1023, 4096} {
				a, b := fillRamp(n), fillRamp(n)
				for i := range b {
					b[i] *= 1.5
				}
				red := NewReduceSum(p, init)
				Forall(p, n, func(c Ctx, i int) { red.Add(c, a[i]*b[i]) })
				want := red.Get()

				got := ForallReduce[float64](p, n, dotReducer{a: a, b: b, init: init})

				deterministic := p.Kind == Seq || p.schedule() == ScheduleStatic
				if deterministic {
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("policy %v sched %v n=%d: fused %v closure %v (want bitwise equal)", p, sched, n, got, want)
					}
				} else {
					diff := math.Abs(got - want)
					tol := 1e-9 * math.Max(math.Abs(want), 1)
					if diff > tol {
						t.Fatalf("policy %v sched %v n=%d: fused %v closure %v diff %v", p, sched, n, got, want, diff)
					}
				}
			}
		}
	}
}

// sliceScanBody adapts (dst, src) slices to the fused ScanBody.
type sliceScanBody struct {
	dst, src []float64
}

func (s sliceScanBody) ScanElem(i int) float64     { return s.src[i] }
func (s sliceScanBody) ScanStore(i int, v float64) { s.dst[i] = v }

// TestForallScanMatchesScanSum requires the fused scan to be
// bit-identical to the slice scan under every policy and schedule: the
// chunk partition depends only on the worker count, and the fused phases
// replay the same per-chunk associations.
func TestForallScanMatchesScanSum(t *testing.T) {
	for _, p := range testPolicies {
		for _, sched := range testSchedules {
			p := p
			p.Schedule = sched
			for _, n := range []int{0, 1, 7, 100, 1023, 4096} {
				src := fillRamp(n)
				for _, exclusive := range []bool{false, true} {
					want := make([]float64, n)
					got := make([]float64, n)
					if exclusive {
						ExclusiveScanSum(p, want, src)
						ForallExclusiveScan(p, n, sliceScanBody{dst: got, src: src})
					} else {
						InclusiveScanSum(p, want, src)
						ForallInclusiveScan(p, n, sliceScanBody{dst: got, src: src})
					}
					for i := range want {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("policy %v sched %v n=%d exclusive=%v: fused[%d]=%v want %v",
								p, sched, n, exclusive, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestSpanOpsMatchScalar pins every span helper against its scalar loop
// on awkward spans, so the safe and rajaunsafe builds are both checked
// against the same oracle.
func TestSpanOpsMatchScalar(t *testing.T) {
	const n = 257
	spans := [][2]int{{0, 0}, {0, 1}, {0, n}, {3, 7}, {n - 1, n}, {13, 200}}
	for _, sp := range spans {
		lo, hi := sp[0], sp[1]
		a, b, c := fillRamp(n), fillRamp(n), fillRamp(n)
		for i := range b {
			b[i] += 1.0
			c[i] += 2.0
		}
		wantA := append([]float64(nil), a...)
		for i := lo; i < hi; i++ {
			wantA[i] = b[i] + 0.62*c[i]
		}
		TriadSpan(a, b, c, 0.62, lo, hi)
		checkBits(t, "TriadSpan", a, wantA)

		d := make([]float64, n)
		wantD := make([]float64, n)
		for i := lo; i < hi; i++ {
			wantD[i] = b[i] + c[i]
		}
		AddSpan(d, b, c, lo, hi)
		checkBits(t, "AddSpan", d, wantD)

		d2 := make([]float64, n)
		wantD2 := make([]float64, n)
		for i := lo; i < hi; i++ {
			wantD2[i] = 0.62 * c[i]
		}
		ScaleSpan(d2, c, 0.62, lo, hi)
		checkBits(t, "ScaleSpan", d2, wantD2)

		d3 := make([]float64, n)
		copy(d3, a)
		wantD3 := append([]float64(nil), d3...)
		for i := lo; i < hi; i++ {
			wantD3[i] += 0.25 * b[i]
		}
		AxpySpan(d3, b, 0.25, lo, hi)
		checkBits(t, "AxpySpan", d3, wantD3)

		d4 := make([]float64, n)
		wantD4 := make([]float64, n)
		for i := lo; i < hi; i++ {
			wantD4[i] = b[i]
		}
		CopySpan(d4, b, lo, hi)
		checkBits(t, "CopySpan", d4, wantD4)

		d5 := make([]float64, n)
		wantD5 := make([]float64, n)
		for i := lo; i < hi; i++ {
			wantD5[i] = 7.5
		}
		FillSpan(d5, 7.5, lo, hi)
		checkBits(t, "FillSpan", d5, wantD5)

		var wantDot, wantSum float64
		for i := lo; i < hi; i++ {
			wantDot += b[i] * c[i]
			wantSum += b[i]
		}
		if got := DotSpan(b, c, lo, hi); math.Float64bits(got) != math.Float64bits(wantDot) {
			t.Fatalf("DotSpan[%d:%d] = %v want %v", lo, hi, got, wantDot)
		}
		if got := SumSpan(b, lo, hi); math.Float64bits(got) != math.Float64bits(wantSum) {
			t.Fatalf("SumSpan[%d:%d] = %v want %v", lo, hi, got, wantSum)
		}
	}
}

func checkBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v want %v", name, i, got[i], want[i])
		}
	}
}

// TestSpanDispatchInstrumentation verifies the observability contract on
// the specialized paths: per-lane stats, the trace hook, and the
// heartbeat keep firing for span dispatches on both the pooled path and
// the spawn fallback (pool held busy by a concurrent dispatch).
func TestSpanDispatchInstrumentation(t *testing.T) {
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		for _, busy := range []bool{false, true} {
			pool := NewPool(4)
			pool.Instrument(true)
			var traced atomic.Int64
			pool.SetLaneTrace(func(lane int, name string, start time.Time, dur time.Duration) {
				traced.Add(1)
			})
			p := Policy{Kind: Par, Workers: 4, Schedule: sched, Pool: pool}

			release := make(chan struct{})
			started := make(chan struct{})
			if busy {
				// Hold the pool mid-dispatch so the span dispatch must
				// take the spawn fallback.
				go Forall(p, 1, func(Ctx, int) {
					close(started)
					<-release
				})
				<-started
			}

			beatsBefore := pool.Heartbeat()
			y, x := make([]float64, 4096), fillRamp(4096)
			ForallSpanG(p, 4096, axpySpanBody{y: y, x: x, alpha: 1.0})
			if busy {
				close(release)
			}

			if pool.Heartbeat() <= beatsBefore {
				t.Fatalf("sched %v busy=%v: heartbeat did not advance on span dispatch", sched, busy)
			}
			if traced.Load() == 0 {
				t.Fatalf("sched %v busy=%v: lane trace never fired on span dispatch", sched, busy)
			}
			var granules, wakes int64
			for _, l := range pool.InstrSnapshot() {
				granules += l.Granules
				wakes += l.Wakes
			}
			if granules == 0 || wakes == 0 {
				t.Fatalf("sched %v busy=%v: instr recorded granules=%d wakes=%d", sched, busy, granules, wakes)
			}
			pool.Close()
		}
	}
}

// fuzzAxpyBody is the fuzz oracle's generic body: y[i] += alpha*x[i].
type fuzzAxpyBody struct {
	y, x  []float64
	alpha float64
}

func (b fuzzAxpyBody) Do(_ Ctx, i int) { b.y[i] += b.alpha * b.x[i] }

func (b fuzzAxpyBody) Span(_ Ctx, lo, hi int) { AxpySpan(b.y, b.x, b.alpha, lo, hi) }

// FuzzGenericDispatch checks that the closure, per-index generic, and
// span-generic dispatch paths produce bit-identical results for an
// elementwise body over fuzzed data and every policy/schedule shape.
func FuzzGenericDispatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 17, 42, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 250, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)
		x := make([]float64, n)
		for i, b := range data {
			x[i] = (float64(b) - 128) * 0.125
		}
		const alpha = 0.62
		for _, p := range fuzzPolicies() {
			want := make([]float64, n)
			Forall(p, n, func(_ Ctx, i int) { want[i] += alpha * x[i] })

			got := make([]float64, n)
			ForallG(p, n, fuzzAxpyBody{y: got, x: x, alpha: alpha})
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("policy %+v: ForallG[%d] = %v, want %v", p, i, got[i], want[i])
				}
			}

			got2 := make([]float64, n)
			ForallSpanG(p, n, fuzzAxpyBody{y: got2, x: x, alpha: alpha})
			for i := range want {
				if math.Float64bits(got2[i]) != math.Float64bits(want[i]) {
					t.Fatalf("policy %+v: ForallSpanG[%d] = %v, want %v", p, i, got2[i], want[i])
				}
			}
		}
	})
}
