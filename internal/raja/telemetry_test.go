package raja

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rajaperf/internal/telemetry"
)

// TestPoolTelemetry: enabling telemetry mid-flight wires the dispatch
// counters and gauges; pooled dispatches and spawn fallbacks are
// attributed correctly.
func TestPoolTelemetry(t *testing.T) {
	reg := &telemetry.Registry{}
	pool := NewPool(4)
	defer pool.Close()
	pool.EnableTelemetry(reg)

	n := 10_000
	y := make([]float64, n)
	body := func(c Ctx, i int) { y[i]++ }
	p := Policy{Kind: Par, Workers: 4, Pool: pool}
	const dispatches = 17
	for i := 0; i < dispatches; i++ {
		Forall(p, n, body)
	}
	if got := reg.Counter("raja.pool.dispatches").Value(); got != dispatches {
		t.Errorf("raja.pool.dispatches = %d, want %d", got, dispatches)
	}
	// The latency histogram samples 1 in dispatchSample, starting with
	// the first dispatch: ordinals 1, 9, 17.
	if got := reg.Histogram("raja.pool.dispatch_ns").Count(); got != 3 {
		t.Errorf("raja.pool.dispatch_ns count = %d, want 3 sampled of %d", got, dispatches)
	}

	// Nested parallel regions cannot re-enter the pool: each inner
	// dispatch is a counted spawn fallback.
	Forall(p, 2, func(c Ctx, i int) {
		inner := make([]float64, 100)
		Forall(p, 100, func(c Ctx, j int) { inner[j]++ })
	})
	if got := reg.Counter("raja.pool.spawn_fallbacks").Value(); got < 1 {
		t.Errorf("raja.pool.spawn_fallbacks = %d, want >= 1 from nesting", got)
	}

	snap := reg.Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["raja.pool.lanes"] != 4 {
		t.Errorf("raja.pool.lanes gauge = %v, want 4", gauges["raja.pool.lanes"])
	}
	if gauges["raja.pool.heartbeat"] < 5 {
		t.Errorf("raja.pool.heartbeat gauge = %v, want >= 5", gauges["raja.pool.heartbeat"])
	}
	if gauges["raja.pool.active_dispatches"] != 0 {
		t.Errorf("active_dispatches = %v at rest, want 0", gauges["raja.pool.active_dispatches"])
	}
	for lane := 0; lane < 4; lane++ {
		if _, ok := gauges[fmt.Sprintf(`raja.pool.lane_busy_sec{lane="%d"}`, lane)]; !ok {
			t.Errorf("per-lane busy gauge missing for lane %d", lane)
		}
	}
}

// TestPoolTelemetryConcurrentEnable: flipping telemetry on while
// dispatches are running races nothing (run under -race) and loses no
// dispatch completions after the enable.
func TestPoolTelemetryConcurrentEnable(t *testing.T) {
	reg := &telemetry.Registry{}
	pool := NewPool(4)
	defer pool.Close()
	p := Policy{Kind: Par, Workers: 4, Pool: pool}
	y := make([]float64, 1000)
	body := func(c Ctx, i int) { y[i]++ }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Forall(p, len(y), body)
		}
	}()
	pool.EnableTelemetry(reg)
	wg.Wait()
	Forall(p, len(y), body)
	if got := reg.Counter("raja.pool.dispatches").Value(); got < 1 {
		t.Errorf("no dispatches recorded after enable: %d", got)
	}
}

// BenchmarkPoolDispatchTelemetry is the overhead gate's measurement: the
// same empty-body dispatch as BenchmarkPoolDispatch with telemetry off
// (one atomic pointer load) and on (two time.Now + three atomic ops).
// EXPERIMENTS.md records the delta against BenchmarkForallPar, where the
// budget is <= 1% of a real kernel dispatch.
func BenchmarkPoolDispatchTelemetry(b *testing.B) {
	body := func(c Ctx, i int) {}
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	n := 64 * lanes
	run := func(b *testing.B, enable bool) {
		pool := NewPool(lanes)
		defer pool.Close()
		if enable {
			pool.EnableTelemetry(&telemetry.Registry{})
		}
		p := Policy{Kind: Par, Workers: lanes, Pool: pool}
		Forall(p, n, body)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Forall(p, n, body)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// TestDispatchTelemetryOverheadPaired measures the telemetry cost as a
// paired difference — alternating off/on batches on the same two pools
// within one process — because back-to-back benchmark batches on a
// shared machine drift by more than the signal. The median paired delta
// is the number EXPERIMENTS.md records against the ≤1% budget; the
// in-test gate is deliberately loose (an order of magnitude above the
// expected cost) so scheduler noise cannot flake CI while a genuine
// regression — say an unsampled time.Now pair per granule — still trips.
func TestDispatchTelemetryOverheadPaired(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement skipped in -short mode")
	}
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	n := 64 * lanes
	body := func(c Ctx, i int) {}

	off := NewPool(lanes)
	defer off.Close()
	on := NewPool(lanes)
	defer on.Close()
	on.EnableTelemetry(&telemetry.Registry{})
	pOff := Policy{Kind: Par, Workers: lanes, Pool: off}
	pOn := Policy{Kind: Par, Workers: lanes, Pool: on}
	Forall(pOff, n, body)
	Forall(pOn, n, body)

	const rounds, batch = 21, 2000
	deltas := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			Forall(pOff, n, body)
		}
		t1 := time.Now()
		for i := 0; i < batch; i++ {
			Forall(pOn, n, body)
		}
		t2 := time.Now()
		deltas = append(deltas, (t2.Sub(t1)-t1.Sub(t0)).Seconds()*1e9/batch)
	}
	sort.Float64s(deltas)
	median := deltas[rounds/2]
	t.Logf("paired dispatch delta: median %+.0f ns/dispatch (min %+.0f, max %+.0f)",
		median, deltas[0], deltas[rounds-1])
	if median > 1000 {
		t.Errorf("telemetry adds %.0f ns per dispatch, an order of magnitude over budget", median)
	}
}
