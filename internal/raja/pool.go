package raja

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Schedule selects how a parallel policy maps iterations onto executor
// lanes, mirroring OpenMP's schedule clause.
type Schedule int

const (
	// ScheduleDefault resolves to ScheduleStatic under Par and
	// ScheduleDynamic under GPU, the shapes the suite's back-ends model.
	ScheduleDefault Schedule = iota
	// ScheduleStatic assigns one contiguous chunk per worker up front
	// (OpenMP schedule(static)). Ctx.Worker is the chunk index, so lane
	// assignment — and therefore reduction rounding — is deterministic.
	ScheduleStatic
	// ScheduleDynamic hands out fixed-size blocks from a shared cursor
	// (OpenMP schedule(dynamic, block); the GPU grid shape). Block size
	// comes from Policy.Block.
	ScheduleDynamic
	// ScheduleGuided hands out exponentially shrinking grabs — half the
	// remaining work divided among lanes, never less than the minimum
	// grab — trading dispatch overhead against load balance (OpenMP
	// schedule(guided)).
	ScheduleGuided
)

// String returns the OpenMP-style schedule name.
func (s Schedule) String() string {
	switch s {
	case ScheduleDefault:
		return "default"
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return "unknown"
	}
}

// ParseSchedule returns the Schedule named by s ("default", "static",
// "dynamic", "guided").
func ParseSchedule(s string) (Schedule, bool) {
	for sc := ScheduleDefault; sc <= ScheduleGuided; sc++ {
		if sc.String() == s {
			return sc, true
		}
	}
	return ScheduleDefault, false
}

// GuidedMinGrab is the smallest index span the guided schedule hands a
// lane when Policy.Block does not override it. Small enough that short
// ranges still balance, large enough that the grab CAS is amortized.
const GuidedMinGrab = 32

// Pool is a persistent worker-pool executor for the parallel back-ends.
// A pool of n lanes keeps n-1 goroutines parked on per-worker wake
// channels; the caller of a parallel region participates as lane 0, so a
// dispatch costs two channel operations per helper lane instead of a
// goroutine spawn per chunk. One dispatch runs at a time; concurrent or
// nested parallel regions fall back to spawning goroutines (see acquire),
// which keeps the pool deadlock-free without a scheduler.
//
// Workers start lazily on the first dispatch and park between dispatches,
// so an idle Pool costs nothing but its struct. Close releases the
// workers; a closed pool's callers fall back to spawning.
type Pool struct {
	lanes   int
	mu      sync.Mutex
	started bool
	closed  bool
	workers []poolWorker
	done    chan struct{}
	task    poolTask

	// Observability services (see instr.go): per-lane statistics for
	// the load-imbalance service and the per-granule trace hook. Both
	// are read atomically at dispatch time, so enabling them is safe
	// while the pool is running, and both apply to the spawn-fallback
	// paths as well as pooled dispatches.
	instr   atomic.Pointer[Instr]
	instrOn atomic.Bool
	trace   atomic.Pointer[LaneTrace]

	// tele is the dispatch-level telemetry hook (see telemetry.go): nil
	// until EnableTelemetry, read atomically once per dispatch. active
	// tracks parallel regions in flight for the queue-depth gauge.
	tele   atomic.Pointer[poolTele]
	active atomic.Int64

	// beats is the pool's liveness counter: it advances once per executed
	// scheduling granule on the pooled dispatch paths and once per
	// dispatch on the spawn fallbacks. Unlike the Instr service it is
	// always on — a single atomic add per granule — so run watchdogs can
	// distinguish a hung dispatch (beats frozen) from a slow one (beats
	// advancing) without enabling instrumentation.
	beats atomic.Int64
}

// Heartbeat returns the pool's monotonic activity counter. Two equal
// reads separated by a sampling interval mean no scheduling granule
// completed in between — the hung-run signal resilience watchdogs key on.
func (p *Pool) Heartbeat() int64 { return p.beats.Load() }

type poolWorker struct {
	wake chan struct{}
}

// poolTask is the in-flight dispatch, reused across dispatches so the
// steady-state Forall path performs zero allocations. Written by the
// dispatching goroutine before the wake sends, read by workers after
// their wake receives; the channel operations order the accesses.
type poolTask struct {
	sched   Schedule
	body    Body                // forall modes
	chunkFn func(w, lo, hi int) // static skeleton mode (Base_OpenMP)
	blockFn func(lo, hi int)    // dynamic skeleton mode (Base_GPU)
	spanFn  spanFunc            // span mode (generic/monomorphized dispatch)
	r       Range
	lanes   int
	chunk   int // static: chunk size
	chunks  int // static: chunk count
	block   int // dynamic: block size; guided: minimum grab
	cursor  atomic.Int64
	grabs   atomic.Int64 // guided: grab ordinal for Ctx.Block
	pending atomic.Int32

	// Observability, captured at acquire time so one dispatch sees one
	// consistent configuration. Nil when the services are off, keeping
	// the uninstrumented hot path to a pair of nil checks per granule.
	instr *Instr
	trace LaneTrace
	beats *atomic.Int64 // the owning pool's heartbeat counter
}

// NewPool returns a pool with n execution lanes (n-1 parked goroutines
// plus the dispatching caller). n <= 0 means runtime.GOMAXPROCS(0).
// Workers are not started until the first dispatch.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{lanes: n, done: make(chan struct{}, 1)}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// Default returns the shared GOMAXPROCS-sized pool used by parallel
// policies whose Policy.Pool is nil. It is created lazily and its workers
// start on the first parallel dispatch.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Lanes reports the pool's execution-lane count.
func (p *Pool) Lanes() int { return p.lanes }

// Close parks the pool permanently: its workers exit and subsequent
// dispatches fall back to spawning goroutines. Close waits for an
// in-flight dispatch to finish and is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		for i := range p.workers {
			close(p.workers[i].wake)
		}
	}
}

// startLocked spawns the parked workers. Caller holds p.mu.
func (p *Pool) startLocked() {
	p.workers = make([]poolWorker, p.lanes-1)
	for i := range p.workers {
		p.workers[i].wake = make(chan struct{}, 1)
		go p.workerLoop(i)
	}
	p.started = true
}

func (p *Pool) workerLoop(id int) {
	w := &p.workers[id]
	for range w.wake {
		p.task.runLane(id + 1)
		if p.task.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// acquire claims the pool for one dispatch. It fails — and the caller
// must fall back to spawning goroutines — when the pool has a single
// lane, is closed, or is already mid-dispatch (a concurrent Forall from
// another goroutine, or a nested parallel region issued from inside a
// pool worker; blocking in either case could deadlock every lane).
func (p *Pool) acquire() bool {
	if p.lanes < 2 || !p.mu.TryLock() {
		return false
	}
	if p.closed {
		p.mu.Unlock()
		return false
	}
	if !p.started {
		p.startLocked()
	}
	p.task.instr = p.activeInstr()
	p.task.trace = p.activeTrace()
	p.task.beats = &p.beats
	return true
}

// runAndWait wakes lanes-1 helpers, runs lane 0 on the caller, waits for
// the helpers, and releases the pool. Caller must have acquired the pool
// and filled p.task for `lanes` participants.
func (p *Pool) runAndWait(lanes int) {
	tele, start := p.dispatchStart()
	t := &p.task
	t.pending.Store(int32(lanes - 1))
	for w := 0; w < lanes-1; w++ {
		p.workers[w].wake <- struct{}{}
	}
	t.runLane(0)
	if lanes > 1 {
		<-p.done
	}
	t.body, t.chunkFn, t.blockFn, t.spanFn = nil, nil, nil, nil
	t.instr, t.trace = nil, nil
	p.mu.Unlock()
	p.dispatchEnd(tele, start)
}

// clampLanes bounds a requested lane count by the pool size.
func (p *Pool) clampLanes(n int) int {
	if n > p.lanes {
		return p.lanes
	}
	return n
}

// forallStatic dispatches a static-chunked forall; false if the pool was
// unavailable. chunks*chunk covers r; Ctx.Worker is the chunk index.
func (p *Pool) forallStatic(r Range, body Body, chunks, chunk int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleStatic
	t.body = body
	t.r = r
	t.lanes = p.clampLanes(chunks)
	t.chunk, t.chunks = chunk, chunks
	p.runAndWait(t.lanes)
	return true
}

// forallDynamic dispatches a block-cursor forall over lanes workers;
// false if the pool was unavailable.
func (p *Pool) forallDynamic(r Range, body Body, block, lanes int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleDynamic
	t.body = body
	t.r = r
	t.lanes = p.clampLanes(lanes)
	t.block = block
	t.cursor.Store(0)
	p.runAndWait(t.lanes)
	return true
}

// forallGuided dispatches a guided forall over lanes workers; false if
// the pool was unavailable.
func (p *Pool) forallGuided(r Range, body Body, minGrab, lanes int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleGuided
	t.body = body
	t.r = r
	t.lanes = p.clampLanes(lanes)
	t.block = minGrab
	t.cursor.Store(0)
	t.grabs.Store(0)
	p.runAndWait(t.lanes)
	return true
}

// forallSpanStatic dispatches a static-chunked span forall; false if the
// pool was unavailable. The span function receives whole granules, so the
// per-index inner loop lives in the (monomorphized) caller, not here.
func (p *Pool) forallSpanStatic(r Range, span spanFunc, chunks, chunk int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleStatic
	t.spanFn = span
	t.r = r
	t.lanes = p.clampLanes(chunks)
	t.chunk, t.chunks = chunk, chunks
	p.runAndWait(t.lanes)
	return true
}

// forallSpanDynamic dispatches a block-cursor span forall over lanes
// workers; false if the pool was unavailable.
func (p *Pool) forallSpanDynamic(r Range, span spanFunc, block, lanes int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleDynamic
	t.spanFn = span
	t.r = r
	t.lanes = p.clampLanes(lanes)
	t.block = block
	t.cursor.Store(0)
	p.runAndWait(t.lanes)
	return true
}

// forallSpanGuided dispatches a guided span forall over lanes workers;
// false if the pool was unavailable.
func (p *Pool) forallSpanGuided(r Range, span spanFunc, minGrab, lanes int) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleGuided
	t.spanFn = span
	t.r = r
	t.lanes = p.clampLanes(lanes)
	t.block = minGrab
	t.cursor.Store(0)
	t.grabs.Store(0)
	p.runAndWait(t.lanes)
	return true
}

// StaticChunks executes f over one contiguous chunk of [0, n) per worker
// — the hand-written fork-join skeleton of the Base_OpenMP variants —
// and returns the number of chunks dispatched. f receives the dense chunk
// index w. Workers of zero means all cores. Falls back to spawning
// goroutines when the pool is busy or closed.
func (p *Pool) StaticChunks(workers, n int, f func(w, lo, hi int)) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, 0, n)
		return 1
	}
	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	if !p.staticChunks(chunks, chunk, n, f) {
		p.beats.Add(1)
		p.noteFallback()
		spawnStaticChunks(chunks, chunk, n, f, p.activeInstr(), p.activeTrace())
	}
	return chunks
}

func (p *Pool) staticChunks(chunks, chunk, n int, f func(w, lo, hi int)) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleStatic
	t.chunkFn = f
	t.r = Range{0, n}
	t.lanes = p.clampLanes(chunks)
	t.chunk, t.chunks = chunk, chunks
	p.runAndWait(t.lanes)
	return true
}

// DynamicBlocks executes f over fixed-size blocks of [0, n) scheduled
// dynamically across workers — the hand-written skeleton of the Base_GPU
// variants. Block of zero means DefaultBlock; workers of zero means all
// cores. The single-lane degenerate path still walks the range block by
// block so f observes the same block-granular call pattern as the
// multi-lane path. Falls back to spawning when the pool is unavailable.
func (p *Pool) DynamicBlocks(workers, block, n int, f func(lo, hi int)) {
	if block <= 0 {
		block = DefaultBlock
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n <= 0 {
		f(0, n)
		return
	}
	blocks := (n + block - 1) / block
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			f(lo, hi)
		}
		return
	}
	if !p.dynamicBlocks(block, n, workers, f) {
		p.beats.Add(1)
		p.noteFallback()
		spawnDynamicBlocks(block, n, workers, f, p.activeInstr(), p.activeTrace())
	}
}

func (p *Pool) dynamicBlocks(block, n, lanes int, f func(lo, hi int)) bool {
	if !p.acquire() {
		return false
	}
	t := &p.task
	t.sched = ScheduleDynamic
	t.blockFn = f
	t.r = Range{0, n}
	t.lanes = p.clampLanes(lanes)
	t.block = block
	t.cursor.Store(0)
	p.runAndWait(t.lanes)
	return true
}

// runLane executes one lane's share of the in-flight task.
func (t *poolTask) runLane(lane int) {
	if t.instr != nil {
		t.instr.wake(lane)
	}
	switch t.sched {
	case ScheduleStatic:
		t.runStatic(lane)
	case ScheduleGuided:
		t.runGuided(lane)
	default:
		t.runDynamic(lane)
	}
}

// measureGranule records one executed granule into the task's
// instrumentation and trace services. owner is the lane a static
// round-robin assignment would have given the granule.
func (t *poolTask) measureGranule(lane, owner int, kind string, start time.Time) {
	d := time.Since(start)
	if t.instr != nil {
		t.instr.granule(lane, owner, d)
	}
	if t.trace != nil {
		t.trace(lane, kind, start, d)
	}
}

// runStatic walks chunks lane, lane+lanes, ... so every chunk executes
// exactly once even when there are more chunks than lanes, and chunk w
// always reports Ctx.Worker == w regardless of which lane ran it.
func (t *poolTask) runStatic(lane int) {
	measured := t.instr != nil || t.trace != nil
	for w := lane; w < t.chunks; w += t.lanes {
		lo := t.r.Begin + w*t.chunk
		hi := lo + t.chunk
		if hi > t.r.End {
			hi = t.r.End
		}
		if lo >= hi {
			return
		}
		var start time.Time
		if measured {
			start = time.Now()
		}
		if t.chunkFn != nil {
			t.chunkFn(w, lo-t.r.Begin, hi-t.r.Begin)
		} else if t.spanFn != nil {
			t.spanFn(Ctx{Worker: w, Block: w}, lo, hi)
		} else {
			body := t.body
			c := Ctx{Worker: w, Block: w}
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}
		t.beats.Add(1)
		if measured {
			// Chunk w's static owner is lane w%lanes == lane: static
			// scheduling never steals.
			t.measureGranule(lane, lane, granuleChunk, start)
		}
	}
}

func (t *poolTask) runDynamic(lane int) {
	n := t.r.Len()
	blocks := (n + t.block - 1) / t.block
	body := t.body
	c := Ctx{Worker: lane}
	measured := t.instr != nil || t.trace != nil
	for {
		b := int(t.cursor.Add(1) - 1)
		if b >= blocks {
			return
		}
		lo := t.r.Begin + b*t.block
		hi := lo + t.block
		if hi > t.r.End {
			hi = t.r.End
		}
		var start time.Time
		if measured {
			start = time.Now()
		}
		if t.blockFn != nil {
			t.blockFn(lo-t.r.Begin, hi-t.r.Begin)
		} else if t.spanFn != nil {
			c.Block = b
			t.spanFn(c, lo, hi)
		} else {
			c.Block = b
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}
		t.beats.Add(1)
		if measured {
			t.measureGranule(lane, b%t.lanes, granuleBlock, start)
		}
	}
}

func (t *poolTask) runGuided(lane int) {
	n := int64(t.r.Len())
	body := t.body
	c := Ctx{Worker: lane}
	measured := t.instr != nil || t.trace != nil
	for {
		cur := t.cursor.Load()
		if cur >= n {
			return
		}
		take := (n - cur) / int64(2*t.lanes)
		if take < int64(t.block) {
			take = int64(t.block)
		}
		if take > n-cur {
			take = n - cur
		}
		if !t.cursor.CompareAndSwap(cur, cur+take) {
			continue
		}
		c.Block = int(t.grabs.Add(1) - 1)
		lo := t.r.Begin + int(cur)
		hi := lo + int(take)
		var start time.Time
		if measured {
			start = time.Now()
		}
		if t.spanFn != nil {
			t.spanFn(c, lo, hi)
		} else {
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}
		t.beats.Add(1)
		if measured {
			t.measureGranule(lane, c.Block%t.lanes, granuleGrab, start)
		}
	}
}

// spawnStaticChunks is the goroutine-per-chunk fallback (and the
// pre-pool baseline measured by BenchmarkForallPar/spawn). in and tr
// are the pool's observability services, nil when disabled.
func spawnStaticChunks(chunks, chunk, n int, f func(w, lo, hi int), in *Instr, tr LaneTrace) {
	var wg sync.WaitGroup
	for w := 0; w < chunks; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			var start time.Time
			if in != nil || tr != nil {
				start = time.Now()
			}
			f(w, lo, hi)
			if in != nil || tr != nil {
				d := time.Since(start)
				if in != nil {
					in.granule(w, w, d)
				}
				if tr != nil {
					tr(w, granuleChunk, start, d)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// spawnDynamicBlocks is the goroutine-per-worker dynamic fallback.
func spawnDynamicBlocks(block, n, workers int, f func(lo, hi int), in *Instr, tr LaneTrace) {
	blocks := (n + block - 1) / block
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			measured := in != nil || tr != nil
			for {
				b := int(cursor.Add(1) - 1)
				if b >= blocks {
					return
				}
				lo := b * block
				hi := lo + block
				if hi > n {
					hi = n
				}
				var start time.Time
				if measured {
					start = time.Now()
				}
				f(lo, hi)
				if measured {
					d := time.Since(start)
					if in != nil {
						in.granule(w, b%workers, d)
					}
					if tr != nil {
						tr(w, granuleBlock, start, d)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
