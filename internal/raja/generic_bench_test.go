package raja

import (
	"fmt"
	"runtime"
	"testing"
)

// benchSpanBody is a daxpy-shaped SpanBody for dispatch benchmarks.
type benchSpanBody struct {
	x, y []float64
}

func (s benchSpanBody) Span(_ Ctx, lo, hi int) { AxpySpan(s.y, s.x, 2.0, lo, hi) }

// benchIdxBody is the same kernel as an IndexBody.
type benchIdxBody struct {
	x, y []float64
}

func (s benchIdxBody) Do(_ Ctx, i int) { s.y[i] += 2.0 * s.x[i] }

// BenchmarkDispatchModes compares the three ways a daxpy-shaped body can
// reach the executor — classic per-index closure, monomorphized
// per-index struct (ForallG), and monomorphized whole-span struct
// (ForallSpanG) — under Seq and pooled Par policies. The span path is
// the suite's rewired-kernel fast path: the inner loop lives in the
// body's own method, so it specializes and bounds-check-eliminates no
// matter what the inliner does with the dispatch layer.
//
//	go test -bench BenchmarkDispatchModes -benchmem ./internal/raja/
func BenchmarkDispatchModes(b *testing.B) {
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		closure := func(c Ctx, i int) { y[i] += 2.0 * x[i] }
		span := benchSpanBody{x: x, y: y}
		idx := benchIdxBody{x: x, y: y}

		pols := []struct {
			name string
			p    Policy
		}{
			{"Seq", Policy{Kind: Seq}},
			{"Par", Policy{Kind: Par, Workers: lanes}},
		}
		for _, pc := range pols {
			p := pc.p
			var pool *Pool
			if p.Kind == Par {
				pool = NewPool(lanes)
				p.Pool = pool
				Forall(p, n, closure) // park the workers outside the timer
			}
			b.Run(fmt.Sprintf("closure/%s/n=%d", pc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Forall(p, n, closure)
				}
			})
			b.Run(fmt.Sprintf("generic/%s/n=%d", pc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ForallG(p, n, idx)
				}
			})
			b.Run(fmt.Sprintf("span/%s/n=%d", pc.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ForallSpanG(p, n, span)
				}
			})
			if pool != nil {
				pool.Close()
			}
		}
	}
}

// BenchmarkForall2DCollapsed measures the collapsed 2-D dispatch against
// the pre-flattening shape (one parallel dispatch per row). Collapsing
// turns ni dispatches into one, so the allocation count per op drops
// from O(ni) to O(1) and small-row iteration spaces stop being
// dominated by dispatch latency.
//
//	go test -bench BenchmarkForall2DCollapsed -benchmem ./internal/raja/
func BenchmarkForall2DCollapsed(b *testing.B) {
	lanes := 2 * max(2, runtime.GOMAXPROCS(0))
	for _, dims := range []struct{ ni, nj int }{{64, 64}, {256, 256}} {
		ni, nj := dims.ni, dims.nj
		grid := make([]float64, ni*nj)
		pool := NewPool(lanes)
		p := Policy{Kind: Par, Workers: lanes, Pool: pool}
		body := func(_ Ctx, i, j int) { grid[i*nj+j] += float64(i - j) }
		Forall2D(p, ni, nj, body) // park the workers outside the timer

		b.Run(fmt.Sprintf("collapsed/%dx%d", ni, nj), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Forall2D(p, ni, nj, body)
			}
		})
		b.Run(fmt.Sprintf("per-row/%dx%d", ni, nj), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for row := 0; row < ni; row++ {
					row := row
					Forall(p, nj, func(c Ctx, j int) { body(c, row, j) })
				}
			}
		})
		pool.Close()
	}
}
