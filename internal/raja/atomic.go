package raja

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// AtomicAddFloat64 atomically adds v to *p and returns the new value,
// mirroring RAJA::atomicAdd<RAJA::auto_atomic> on doubles. It is the
// primitive behind the suite's ATOMIC, DAXPY_ATOMIC, and PI_ATOMIC kernels.
func AtomicAddFloat64(p *float64, v float64) float64 {
	addr := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(addr)
		cur := math.Float64frombits(old)
		next := cur + v
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(next)) {
			return next
		}
	}
}

// AtomicAddInt64 atomically adds v to *p and returns the new value.
func AtomicAddInt64(p *int64, v int64) int64 {
	return atomic.AddInt64(p, v)
}

// AtomicIncInt64 atomically increments *p and returns the previous value,
// the "grab a slot" idiom used by the INDEXLIST kernels.
func AtomicIncInt64(p *int64) int64 {
	return atomic.AddInt64(p, 1) - 1
}

// AtomicMaxFloat64 atomically folds a maximum into *p.
func AtomicMaxFloat64(p *float64, v float64) {
	addr := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(addr)
		cur := math.Float64frombits(old)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return
		}
	}
}

// AtomicMinFloat64 atomically folds a minimum into *p.
func AtomicMinFloat64(p *float64, v float64) {
	addr := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(addr)
		cur := math.Float64frombits(old)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return
		}
	}
}
