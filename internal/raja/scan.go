package raja

import "sync"

// InclusiveScanSum writes the inclusive prefix sum of src into dst
// (RAJA::inclusive_scan). Under parallel policies it uses the classic
// three-phase scan: per-chunk partial sums, a sequential scan of the chunk
// totals, then a per-chunk fix-up pass.
func InclusiveScanSum[T Number](p Policy, dst, src []T) {
	scanSum(p, dst, src, false)
}

// ExclusiveScanSum writes the exclusive prefix sum of src into dst
// (RAJA::exclusive_scan); dst[0] is zero.
func ExclusiveScanSum[T Number](p Policy, dst, src []T) {
	scanSum(p, dst, src, true)
}

func scanSum[T Number](p Policy, dst, src []T, exclusive bool) {
	n := len(src)
	if len(dst) != n {
		panic("raja: scan length mismatch")
	}
	if n == 0 {
		return
	}
	workers := p.workers()
	if p.Kind == Seq || workers <= 1 || n < 4*workers {
		var acc T
		if exclusive {
			for i := 0; i < n; i++ {
				dst[i] = acc
				acc += src[i]
			}
		} else {
			for i := 0; i < n; i++ {
				acc += src[i]
				dst[i] = acc
			}
		}
		return
	}

	chunk := (n + workers - 1) / workers
	totals := make([]T, workers)

	// Phase 1: independent per-chunk scans.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds(w, chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var acc T
			if exclusive {
				for i := lo; i < hi; i++ {
					dst[i] = acc
					acc += src[i]
				}
			} else {
				for i := lo; i < hi; i++ {
					acc += src[i]
					dst[i] = acc
				}
			}
			totals[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()

	// Phase 2: scan the chunk totals sequentially.
	var run T
	offsets := make([]T, workers)
	for w := 0; w < workers; w++ {
		offsets[w] = run
		run += totals[w]
	}

	// Phase 3: add each chunk's offset.
	for w := 1; w < workers; w++ {
		lo, hi := bounds(w, chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(off T, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dst[i] += off
			}
		}(offsets[w], lo, hi)
	}
	wg.Wait()
}

func bounds(w, chunk, n int) (int, int) {
	lo := w * chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
