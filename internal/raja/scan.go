package raja

// InclusiveScanSum writes the inclusive prefix sum of src into dst
// (RAJA::inclusive_scan). Under parallel policies it uses the classic
// three-phase scan: per-chunk partial sums, a sequential scan of the chunk
// totals, then a per-chunk fix-up pass.
func InclusiveScanSum[T Number](p Policy, dst, src []T) {
	scanSum(p, dst, src, false)
}

// ExclusiveScanSum writes the exclusive prefix sum of src into dst
// (RAJA::exclusive_scan); dst[0] is zero.
func ExclusiveScanSum[T Number](p Policy, dst, src []T) {
	scanSum(p, dst, src, true)
}

func scanSum[T Number](p Policy, dst, src []T, exclusive bool) {
	n := len(src)
	if len(dst) != n {
		panic("raja: scan length mismatch")
	}
	if n == 0 {
		return
	}
	workers := p.workers()
	if p.Kind == Seq || workers <= 1 || n < 4*workers {
		var acc T
		if exclusive {
			for i := 0; i < n; i++ {
				dst[i] = acc
				acc += src[i]
			}
		} else {
			for i := 0; i < n; i++ {
				acc += src[i]
				dst[i] = acc
			}
		}
		return
	}

	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	totals := make([]T, chunks)
	pp := chunkLoopPolicy(p)

	// Phase 1: independent per-chunk scans, one chunk per forall index.
	ForallRange(pp, RangeN(chunks), func(_ Ctx, w int) {
		lo, hi := bounds(w, chunk, n)
		var acc T
		if exclusive {
			for i := lo; i < hi; i++ {
				dst[i] = acc
				acc += src[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				acc += src[i]
				dst[i] = acc
			}
		}
		totals[w] = acc
	})

	// Phase 2: scan the chunk totals sequentially.
	var run T
	offsets := make([]T, chunks)
	for w := 0; w < chunks; w++ {
		offsets[w] = run
		run += totals[w]
	}

	// Phase 3: add each chunk's offset.
	ForallRange(pp, Range{1, chunks}, func(_ Ctx, w int) {
		lo, hi := bounds(w, chunk, n)
		off := offsets[w]
		for i := lo; i < hi; i++ {
			dst[i] += off
		}
	})
}

// chunkLoopPolicy derives the policy scan and sort use to distribute
// whole chunks (not single indices) across the pool: dynamic scheduling
// with block size 1 over the chunk-index space, on the caller's pool.
func chunkLoopPolicy(p Policy) Policy {
	return Policy{Kind: Par, Workers: p.workers(), Schedule: ScheduleDynamic, Block: 1, Pool: p.Pool}
}

func bounds(w, chunk, n int) (int, int) {
	lo := w * chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
