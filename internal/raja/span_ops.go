//go:build !rajaunsafe

package raja

// Stride-aware unit-stride span kernels for the Stream/Lcals-shaped loop
// bodies. Each helper processes the half-open span [lo, hi) of its
// slices with the bounds checks hoisted: reslicing every operand to the
// span and pinning the side operands to len of the destination lets the
// compiler prove every index in range, so the loop compiles to the same
// straight-line code as a hand-written Base kernel.
//
// Building with -tags rajaunsafe swaps these for pointer-walking
// implementations (span_ops_unsafe.go) that also skip the slice-header
// loads; both variants are covered by the kerneltest conformance corpus.

// TriadSpan computes a[i] = b[i] + alpha*c[i] for i in [lo, hi).
func TriadSpan(a, b, c []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	a2 := a[lo:hi]
	b2 := b[lo:hi][:len(a2)]
	c2 := c[lo:hi][:len(a2)]
	for i := range a2 {
		a2[i] = b2[i] + alpha*c2[i]
	}
}

// AddSpan computes dst[i] = a[i] + b[i] for i in [lo, hi).
func AddSpan(dst, a, b []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	d2 := dst[lo:hi]
	a2 := a[lo:hi][:len(d2)]
	b2 := b[lo:hi][:len(d2)]
	for i := range d2 {
		d2[i] = a2[i] + b2[i]
	}
}

// CopySpan computes dst[i] = src[i] for i in [lo, hi).
func CopySpan(dst, src []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	copy(dst[lo:hi], src[lo:hi])
}

// ScaleSpan computes dst[i] = alpha * src[i] for i in [lo, hi).
func ScaleSpan(dst, src []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	d2 := dst[lo:hi]
	s2 := src[lo:hi][:len(d2)]
	for i := range d2 {
		d2[i] = alpha * s2[i]
	}
}

// AxpySpan computes y[i] += alpha * x[i] for i in [lo, hi).
func AxpySpan(y, x []float64, alpha float64, lo, hi int) {
	if lo >= hi {
		return
	}
	y2 := y[lo:hi]
	x2 := x[lo:hi][:len(y2)]
	for i := range y2 {
		y2[i] += alpha * x2[i]
	}
}

// FillSpan sets dst[i] = v for i in [lo, hi).
func FillSpan(dst []float64, v float64, lo, hi int) {
	if lo >= hi {
		return
	}
	d2 := dst[lo:hi]
	for i := range d2 {
		d2[i] = v
	}
}

// DotSpan returns the ascending-order sum of a[i]*b[i] over [lo, hi) —
// the same association a per-index reducer accumulates for the span.
func DotSpan(a, b []float64, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	a2 := a[lo:hi]
	b2 := b[lo:hi][:len(a2)]
	var s float64
	for i := range a2 {
		s += a2[i] * b2[i]
	}
	return s
}

// SumSpan returns the ascending-order sum of x[i] over [lo, hi).
func SumSpan(x []float64, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	x2 := x[lo:hi]
	var s float64
	for i := range x2 {
		s += x2[i]
	}
	return s
}
