package raja

// Fused forall+reduce and forall+scan compositions. The classic path
// pairs a Forall dispatch with a separately allocated reducer whose Add
// is a per-index interface call; the fused path computes whole-granule
// partials inside the (monomorphized) body and combines them once per
// granule, so a reduction costs one dispatch and zero per-index calls.

// Reducer is a fused reduction body. Partial reduces the half-open span
// [lo, hi) starting from the reduction's identity; Combine folds two
// partial results; Init is the initial value folded into the final
// result exactly once (RAJA's reducer initial value).
//
// Determinism contract, mirroring the classic reducers: partials land in
// a private slot per Ctx.Worker and the final fold walks slots in
// ascending order, so under Seq and static schedules — where the
// worker→span mapping is deterministic — the result is bit-identical to
// the classic per-index reducer. Dynamic and guided schedules combine a
// lane's grabs in arrival order, which reassociates floating-point sums
// exactly like the classic path's per-lane accumulation does.
type Reducer[A any] interface {
	Init() A
	Partial(lo, hi int) A
	Combine(a, b A) A
}

// ForallReduce executes body.Partial over the scheduling granules of
// [0, n) under p and returns the combined reduction. One dispatch, no
// per-index calls, no reducer allocation beyond the per-worker slots.
func ForallReduce[A any, B Reducer[A]](p Policy, n int, body B) A {
	if n <= 0 {
		return body.Init()
	}
	if p.Kind == Seq || p.workers() <= 1 {
		// Same association as the classic path's single slot: identity-
		// based ascending partial, folded once with the initial value.
		return body.Combine(body.Init(), body.Partial(0, n))
	}
	w := p.MaxWorkers()
	slots := make([]A, w*lanePad)
	set := make([]bool, w*lanePad)
	forallSpans(p, RangeN(n), func(c Ctx, lo, hi int) {
		part := body.Partial(lo, hi)
		k := c.Worker * lanePad
		if set[k] {
			slots[k] = body.Combine(slots[k], part)
		} else {
			slots[k], set[k] = part, true
		}
	})
	acc := body.Init()
	for k := 0; k < len(slots); k += lanePad {
		if set[k] {
			acc = body.Combine(acc, slots[k])
		}
	}
	return acc
}

// ScanBody is a fused scan body: ScanElem produces the i-th value to
// prefix-sum and ScanStore receives the i-th prefix. The body never sees
// partial values — each index is stored exactly once, with its final
// prefix — so sources and destinations may alias arbitrarily as long as
// ScanElem(i) is not affected by ScanStore(j) for j < i in the same
// chunk (the in-place dst==src scan satisfies this for exclusive scans
// reading ahead of writes; use distinct slices otherwise).
type ScanBody[T Number] interface {
	ScanElem(i int) T
	ScanStore(i int, v T)
}

// ForallInclusiveScan writes the inclusive prefix sum of body.ScanElem
// into body.ScanStore. Bit-identical to InclusiveScanSum over the same
// policy: same sequential cutoff, chunking, and per-chunk association.
func ForallInclusiveScan[T Number, B ScanBody[T]](p Policy, n int, body B) {
	forallScanSum(p, n, body, false)
}

// ForallExclusiveScan writes the exclusive prefix sum of body.ScanElem
// into body.ScanStore; index 0 receives zero.
func ForallExclusiveScan[T Number, B ScanBody[T]](p Policy, n int, body B) {
	forallScanSum(p, n, body, true)
}

// forallScanSum is the fused analog of scanSum. It uses the scan-reduce
// formulation: phase 1 reduces each chunk's total (no stores), phase 2
// exclusive-scans the totals in place, phase 3 rescans each chunk and
// stores localPrefix+offset in one pass — one store per element instead
// of scanSum's store-then-fixup read-modify-write, and one scratch
// allocation instead of two. The per-chunk local prefix recomputed in
// phase 3 is the same ascending association phase 1 summed, and chunk 0
// skips the +offset add, so results are bit-identical to scanSum.
func forallScanSum[T Number, B ScanBody[T]](p Policy, n int, body B, exclusive bool) {
	if n <= 0 {
		return
	}
	workers := p.workers()
	if p.Kind == Seq || workers <= 1 || n < 4*workers {
		var acc T
		if exclusive {
			for i := 0; i < n; i++ {
				body.ScanStore(i, acc)
				acc += body.ScanElem(i)
			}
		} else {
			for i := 0; i < n; i++ {
				acc += body.ScanElem(i)
				body.ScanStore(i, acc)
			}
		}
		return
	}

	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	offsets := make([]T, chunks)
	pp := chunkLoopPolicy(p)

	// Phase 1: per-chunk totals.
	forallSpans(pp, RangeN(chunks), func(_ Ctx, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := bounds(w, chunk, n)
			var acc T
			for i := lo; i < hi; i++ {
				acc += body.ScanElem(i)
			}
			offsets[w] = acc
		}
	})

	// Phase 2: exclusive-scan the totals sequentially, in place.
	var run T
	for w := 0; w < chunks; w++ {
		t := offsets[w]
		offsets[w] = run
		run += t
	}

	// Phase 3: rescan each chunk, storing final prefixes.
	forallSpans(pp, RangeN(chunks), func(_ Ctx, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			lo, hi := bounds(w, chunk, n)
			var acc T
			off := offsets[w]
			switch {
			case w == 0 && exclusive:
				for i := lo; i < hi; i++ {
					body.ScanStore(i, acc)
					acc += body.ScanElem(i)
				}
			case w == 0:
				for i := lo; i < hi; i++ {
					acc += body.ScanElem(i)
					body.ScanStore(i, acc)
				}
			case exclusive:
				for i := lo; i < hi; i++ {
					body.ScanStore(i, acc+off)
					acc += body.ScanElem(i)
				}
			default:
				for i := lo; i < hi; i++ {
					acc += body.ScanElem(i)
					body.ScanStore(i, acc+off)
				}
			}
		}
	})
}
