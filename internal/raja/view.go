package raja

// Layout2 maps a two-dimensional index space onto linear storage in
// row-major order, mirroring RAJA::Layout<2>.
type Layout2 struct {
	N1 int // extent of the fastest-varying dimension
}

// Layout3 maps a three-dimensional index space onto linear storage.
type Layout3 struct {
	N1, N2 int // extents of the two fastest-varying dimensions
}

// Layout4 maps a four-dimensional index space onto linear storage.
type Layout4 struct {
	N1, N2, N3 int
}

// View1 is a one-dimensional typed view over linear storage with an
// optional index offset, mirroring RAJA::View with an OffsetLayout. The
// suite's INIT_VIEW1D kernels exercise exactly this indirection.
type View1[T any] struct {
	Data   []T
	Offset int
}

// NewView1 wraps data in a 1-D view with no offset.
func NewView1[T any](data []T) View1[T] { return View1[T]{Data: data} }

// NewView1Offset wraps data in a 1-D view whose index i maps to
// data[i-offset].
func NewView1Offset[T any](data []T, offset int) View1[T] {
	return View1[T]{Data: data, Offset: offset}
}

// At returns the element at logical index i.
func (v View1[T]) At(i int) T { return v.Data[i-v.Offset] }

// Set stores x at logical index i.
func (v View1[T]) Set(i int, x T) { v.Data[i-v.Offset] = x }

// View2 is a row-major two-dimensional view (RAJA::View<double, Layout<2>>).
type View2[T any] struct {
	Data []T
	L    Layout2
}

// NewView2 wraps data as an n0 x n1 view; data must have n0*n1 elements.
func NewView2[T any](data []T, n1 int) View2[T] {
	return View2[T]{Data: data, L: Layout2{N1: n1}}
}

// Idx returns the linear index of (i, j).
func (v View2[T]) Idx(i, j int) int { return i*v.L.N1 + j }

// At returns the element at (i, j).
func (v View2[T]) At(i, j int) T { return v.Data[i*v.L.N1+j] }

// Set stores x at (i, j).
func (v View2[T]) Set(i, j int, x T) { v.Data[i*v.L.N1+j] = x }

// View3 is a row-major three-dimensional view.
type View3[T any] struct {
	Data []T
	L    Layout3
}

// NewView3 wraps data as an n0 x n1 x n2 view.
func NewView3[T any](data []T, n1, n2 int) View3[T] {
	return View3[T]{Data: data, L: Layout3{N1: n1, N2: n2}}
}

// Idx returns the linear index of (i, j, k).
func (v View3[T]) Idx(i, j, k int) int { return (i*v.L.N1+j)*v.L.N2 + k }

// At returns the element at (i, j, k).
func (v View3[T]) At(i, j, k int) T { return v.Data[(i*v.L.N1+j)*v.L.N2+k] }

// Set stores x at (i, j, k).
func (v View3[T]) Set(i, j, k int, x T) { v.Data[(i*v.L.N1+j)*v.L.N2+k] = x }

// View4 is a row-major four-dimensional view; the suite's LTIMES kernel
// indexes its angular flux arrays through one.
type View4[T any] struct {
	Data []T
	L    Layout4
}

// NewView4 wraps data as an n0 x n1 x n2 x n3 view.
func NewView4[T any](data []T, n1, n2, n3 int) View4[T] {
	return View4[T]{Data: data, L: Layout4{N1: n1, N2: n2, N3: n3}}
}

// Idx returns the linear index of (i, j, k, l).
func (v View4[T]) Idx(i, j, k, l int) int {
	return ((i*v.L.N1+j)*v.L.N2+k)*v.L.N3 + l
}

// At returns the element at (i, j, k, l).
func (v View4[T]) At(i, j, k, l int) T { return v.Data[v.Idx(i, j, k, l)] }

// Set stores x at (i, j, k, l).
func (v View4[T]) Set(i, j, k, l int, x T) { v.Data[v.Idx(i, j, k, l)] = x }
