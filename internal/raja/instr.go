package raja

import (
	"sync/atomic"
	"time"
)

// Per-lane executor instrumentation — the load-imbalance measurement
// service of the Caliper layer. When enabled on a Pool, every scheduling
// granule (static chunk, dynamic block, guided grab) accumulates busy
// time and counts into a padded per-lane slot, on both the pooled and
// the spawn-fallback dispatch paths. The suite snapshots the counters
// around each kernel run and derives max/avg lane time and imbalance
// percentage, the quantities the paper's scalability analysis needs and
// a plain wall clock cannot see.

// LaneTrace is the hook signature the trace service plugs into the
// executor: one call per scheduling granule, naming the granule kind
// ("chunk", "block", or "grab"). Implementations must be safe for
// concurrent calls from every lane.
type LaneTrace func(lane int, name string, start time.Time, dur time.Duration)

// Granule kind names reported through LaneTrace. Constants, so the hot
// path never formats strings.
const (
	granuleChunk = "chunk"
	granuleBlock = "block"
	granuleGrab  = "grab"
)

// laneStat is one lane's counters, padded to a cache line so lanes never
// false-share. All fields are atomics: the pooled path has one writer
// per slot, but spawn fallbacks may fold several goroutines onto one
// slot concurrently.
type laneStat struct {
	busyNS   atomic.Int64 // time spent executing granule bodies
	granules atomic.Int64 // scheduling granules executed
	steals   atomic.Int64 // granules whose static owner is another lane
	wakes    atomic.Int64 // dispatches this lane participated in
	_        [4]int64
}

// Instr is a Pool's per-lane statistics block.
type Instr struct {
	lanes []laneStat
}

func newInstr(lanes int) *Instr {
	if lanes < 1 {
		lanes = 1
	}
	return &Instr{lanes: make([]laneStat, lanes)}
}

// slot folds a lane index onto an instrumented slot; spawn fallbacks can
// report lane indices past the pool's lane count.
func (in *Instr) slot(lane int) *laneStat {
	if lane < 0 {
		lane = 0
	}
	return &in.lanes[lane%len(in.lanes)]
}

// granule records one executed scheduling granule: lane ran it, owner is
// the lane that would have run it under a static round-robin assignment
// (granule ordinal mod dispatch lanes, computed by the caller), so
// owner != lane counts as a steal — the work-displacement signal of the
// dynamic and guided schedules.
func (in *Instr) granule(lane, owner int, dur time.Duration) {
	s := in.slot(lane)
	s.busyNS.Add(dur.Nanoseconds())
	s.granules.Add(1)
	if owner != lane {
		s.steals.Add(1)
	}
}

// wake records one dispatch participation.
func (in *Instr) wake(lane int) { in.slot(lane).wakes.Add(1) }

// LaneSnapshot is one lane's cumulative counters at a point in time.
type LaneSnapshot struct {
	Busy     time.Duration // total granule execution time
	Granules int64         // granules executed
	Steals   int64         // granules stolen from another lane's share
	Wakes    int64         // dispatches participated in
}

// snapshot copies the counters. Safe concurrently with recording; a
// snapshot taken mid-dispatch is a consistent-enough point-in-time view
// (each field is individually atomic).
func (in *Instr) snapshot() []LaneSnapshot {
	out := make([]LaneSnapshot, len(in.lanes))
	for i := range in.lanes {
		s := &in.lanes[i]
		out[i] = LaneSnapshot{
			Busy:     time.Duration(s.busyNS.Load()),
			Granules: s.granules.Load(),
			Steals:   s.steals.Load(),
			Wakes:    s.wakes.Load(),
		}
	}
	return out
}

// Instrument enables (or disables) per-lane statistics collection on the
// pool. Enabling is idempotent and keeps accumulated counters; disabling
// stops collection but preserves the last snapshot. Concurrent dispatches
// observe the change at their next acquire.
func (p *Pool) Instrument(on bool) {
	if on {
		p.instr.CompareAndSwap(nil, newInstr(p.lanes))
		p.instrOn.Store(true)
	} else {
		p.instrOn.Store(false)
	}
}

// InstrSnapshot returns the pool's cumulative per-lane counters, or nil
// if Instrument(true) was never called. Deltas of two snapshots bracket
// a measurement interval.
func (p *Pool) InstrSnapshot() []LaneSnapshot {
	in := p.instr.Load()
	if in == nil {
		return nil
	}
	return in.snapshot()
}

// activeInstr returns the stats block if collection is enabled.
func (p *Pool) activeInstr() *Instr {
	if !p.instrOn.Load() {
		return nil
	}
	return p.instr.Load()
}

// SetLaneTrace installs (or, with nil, removes) the per-granule trace
// hook. The hook must be safe for concurrent calls; it is read
// atomically by every dispatch, so installation is safe while the pool
// is running.
func (p *Pool) SetLaneTrace(fn LaneTrace) {
	if fn == nil {
		p.trace.Store(nil)
		return
	}
	p.trace.Store(&fn)
}

// activeTrace returns the installed lane-trace hook, or nil.
func (p *Pool) activeTrace() LaneTrace {
	if fn := p.trace.Load(); fn != nil {
		return *fn
	}
	return nil
}

// Imbalance summarizes a per-lane busy-time distribution over a
// measurement interval — the OpenMP-style load-imbalance metrics
// attached to each kernel's Caliper record.
type Imbalance struct {
	Lanes    int           // lanes that did any work in the interval
	Max      time.Duration // busiest lane
	Min      time.Duration // least-busy participating lane
	Avg      time.Duration // mean over participating lanes
	Pct      float64       // (max-avg)/max * 100; 0 = perfectly balanced
	Granules int64         // granules executed in the interval
	Steals   int64         // granules run off their static owner lane
	Wakes    int64         // dispatch participations in the interval
}

// ComputeImbalance derives imbalance metrics from two instrumentation
// snapshots bracketing a measurement interval (before may be nil for
// "since collection began"). Lanes with zero busy time and zero granules
// did not participate and are excluded, so a 4-lane pool running a
// 2-lane dispatch is not reported as 50% imbalanced by construction.
func ComputeImbalance(before, after []LaneSnapshot) Imbalance {
	var im Imbalance
	var total time.Duration
	for i := range after {
		d := after[i]
		if before != nil && i < len(before) {
			b := before[i]
			d = LaneSnapshot{
				Busy:     d.Busy - b.Busy,
				Granules: d.Granules - b.Granules,
				Steals:   d.Steals - b.Steals,
				Wakes:    d.Wakes - b.Wakes,
			}
		}
		im.Granules += d.Granules
		im.Steals += d.Steals
		im.Wakes += d.Wakes
		if d.Busy <= 0 && d.Granules == 0 {
			continue
		}
		if im.Lanes == 0 || d.Busy > im.Max {
			im.Max = d.Busy
		}
		if im.Lanes == 0 || d.Busy < im.Min {
			im.Min = d.Busy
		}
		total += d.Busy
		im.Lanes++
	}
	if im.Lanes > 0 {
		im.Avg = total / time.Duration(im.Lanes)
	}
	if im.Max > 0 {
		im.Pct = 100 * float64(im.Max-im.Avg) / float64(im.Max)
	}
	return im
}
