package raja

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInclusiveScanSum(t *testing.T) {
	for _, p := range testPolicies {
		for _, n := range []int{0, 1, 2, 3, 100, 4097} {
			src := make([]int64, n)
			for i := range src {
				src[i] = int64(i%7 - 3)
			}
			dst := make([]int64, n)
			InclusiveScanSum(p, dst, src)
			var acc int64
			for i := range src {
				acc += src[i]
				if dst[i] != acc {
					t.Fatalf("policy %v n=%d: dst[%d]=%d, want %d", p, n, i, dst[i], acc)
				}
			}
		}
	}
}

func TestExclusiveScanSum(t *testing.T) {
	for _, p := range testPolicies {
		for _, n := range []int{0, 1, 5, 1000} {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i) * 0.25
			}
			dst := make([]float64, n)
			ExclusiveScanSum(p, dst, src)
			var acc float64
			for i := range src {
				if dst[i] != acc {
					t.Fatalf("policy %v n=%d: dst[%d]=%v, want %v", p, n, i, dst[i], acc)
				}
				acc += src[i]
			}
		}
	}
}

func TestScanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	InclusiveScanSum(SeqPolicy(), make([]int, 3), make([]int, 4))
}

// Property: parallel inclusive scan of integers equals the sequential scan.
func TestQuickScanEquivalence(t *testing.T) {
	f := func(xs []int32) bool {
		src := make([]int64, len(xs))
		for i, v := range xs {
			src[i] = int64(v)
		}
		par := make([]int64, len(src))
		InclusiveScanSum(ParPolicy(6), par, src)
		var acc int64
		for i := range src {
			acc += src[i]
			if par[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortProducesSortedPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range testPolicies {
		for _, n := range []int{0, 1, 2, 17, 1000, 8191} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64()*100 - 50
			}
			orig := append([]float64(nil), x...)
			Sort(p, x)
			if !sort.Float64sAreSorted(x) {
				t.Fatalf("policy %v n=%d: output not sorted", p, n)
			}
			sort.Float64s(orig)
			for i := range x {
				if x[i] != orig[i] {
					t.Fatalf("policy %v n=%d: output is not a permutation of input", p, n)
				}
			}
		}
	}
}

func TestSortPairsKeepsPairsTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range testPolicies {
		const n = 2000
		keys := make([]int64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(200)) // duplicates on purpose
			vals[i] = float64(keys[i]) * 2.5
		}
		SortPairs(p, keys, vals)
		for i := 0; i < n; i++ {
			if i > 0 && keys[i-1] > keys[i] {
				t.Fatalf("policy %v: keys not sorted at %d", p, i)
			}
			if vals[i] != float64(keys[i])*2.5 {
				t.Fatalf("policy %v: pair broken at %d: key=%d val=%v", p, i, keys[i], vals[i])
			}
		}
	}
}

// Property: Sort under the GPU policy sorts any integer input.
func TestQuickSort(t *testing.T) {
	f := func(xs []int32) bool {
		x := make([]int64, len(xs))
		for i, v := range xs {
			x[i] = int64(v)
		}
		Sort(GPUPolicy(32), x)
		for i := 1; i < len(x); i++ {
			if x[i-1] > x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkGroupRunsAllItems(t *testing.T) {
	for _, p := range testPolicies {
		var g WorkGroup
		sums := make([]int64, 10)
		for k := 0; k < 10; k++ {
			k := k
			g.Enqueue(100+k, func(c Ctx, i int) {
				AtomicAddInt64(&sums[k], int64(i))
			})
		}
		if g.Len() != 10 {
			t.Fatalf("Len = %d, want 10", g.Len())
		}
		if got := g.TotalIterations(); got != 1045 {
			t.Fatalf("TotalIterations = %d, want 1045", got)
		}
		g.Run(p)
		if g.Len() != 0 {
			t.Fatalf("policy %v: group not cleared after Run", p)
		}
		for k := range sums {
			n := int64(100 + k)
			want := n * (n - 1) / 2
			if sums[k] != want {
				t.Fatalf("policy %v: item %d sum = %d, want %d", p, k, sums[k], want)
			}
		}
	}
}

func TestAtomicPrimitives(t *testing.T) {
	var f float64
	var n int64
	p := ParPolicy(8)
	Forall(p, 10000, func(c Ctx, i int) {
		AtomicAddFloat64(&f, 0.5)
		AtomicAddInt64(&n, 2)
	})
	if f != 5000 {
		t.Errorf("atomic float sum = %v, want 5000", f)
	}
	if n != 20000 {
		t.Errorf("atomic int sum = %d, want 20000", n)
	}

	var mx, mn float64 = -1e300, 1e300
	Forall(p, 1000, func(c Ctx, i int) {
		AtomicMaxFloat64(&mx, float64(i))
		AtomicMinFloat64(&mn, float64(i))
	})
	if mx != 999 || mn != 0 {
		t.Errorf("atomic max/min = %v/%v, want 999/0", mx, mn)
	}

	var slot int64
	seen := make([]int64, 100)
	Forall(p, 100, func(c Ctx, i int) {
		seen[AtomicIncInt64(&slot)]++
	})
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("slot %d assigned %d times", i, s)
		}
	}
}

func TestViews(t *testing.T) {
	d := make([]float64, 24)
	v3 := NewView3(d, 3, 4) // 2 x 3 x 4
	v3.Set(1, 2, 3, 42)
	if v3.At(1, 2, 3) != 42 || d[23] != 42 {
		t.Error("View3 indexing wrong")
	}
	v2 := NewView2(d, 12)
	if v2.At(1, 11) != 42 {
		t.Error("View2 indexing disagrees with View3")
	}
	v4 := NewView4(d, 2, 3, 4) // 1 x 2 x 3 x 4
	if v4.At(0, 1, 2, 3) != 42 {
		t.Error("View4 indexing disagrees")
	}
	ov := NewView1Offset(d, -10)
	ov.Set(-10, 7)
	if d[0] != 7 || ov.At(-10) != 7 {
		t.Error("offset view indexing wrong")
	}
	v1 := NewView1(d)
	if v1.At(0) != 7 {
		t.Error("View1 indexing wrong")
	}
	v1.Set(2, 3.5)
	if d[2] != 3.5 {
		t.Error("View1 Set wrong")
	}
}

// Property: View3 linear indexing is a bijection onto [0, n0*n1*n2).
func TestQuickView3Bijection(t *testing.T) {
	f := func(a, b, c uint8) bool {
		n0, n1, n2 := int(a%5)+1, int(b%5)+1, int(c%5)+1
		v := NewView3(make([]float64, n0*n1*n2), n1, n2)
		seen := make(map[int]bool)
		for i := 0; i < n0; i++ {
			for j := 0; j < n1; j++ {
				for k := 0; k < n2; k++ {
					idx := v.Idx(i, j, k)
					if idx < 0 || idx >= n0*n1*n2 || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
		}
		return len(seen) == n0*n1*n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
