package raja

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestScheduleEquivalence is the scheduling-equivalence conformance test:
// every Schedule x worker count x block size must cover each index of a
// Range exactly once — including empty, single-element, and
// workers-exceed-size ranges — on both the pooled and spawned paths.
// A pool scheduling bug (lost chunk, double-grabbed block, mis-advanced
// cursor) surfaces here as a deterministic failure.
func TestScheduleEquivalence(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	schedules := []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided}
	workerCounts := []int{1, 2, 3, 4, 7, 33}
	blocks := []int{0, 1, 7, 64}
	ranges := []Range{
		{0, 0},    // empty
		{5, 5},    // empty, nonzero origin
		{9, 3},    // reversed (empty)
		{0, 1},    // single element
		{41, 42},  // single element, nonzero origin
		{0, 2},    // fewer elements than most worker counts
		{0, 100},  //
		{17, 930}, // origin + non-multiple length
		{0, 4096},
	}

	for _, kind := range []PolicyKind{Par, GPU} {
		for _, sched := range schedules {
			for _, workers := range workerCounts {
				for _, block := range blocks {
					for _, r := range ranges {
						p := Policy{Kind: kind, Workers: workers, Block: block,
							Schedule: sched, Pool: pool}
						name := fmt.Sprintf("%v/%v/w%d/b%d/%v", kind, sched, workers, block, r)
						checkCoverage(t, name, p, r)
					}
				}
			}
		}
	}
}

func checkCoverage(t *testing.T, name string, p Policy, r Range) {
	t.Helper()
	n := r.Len()
	hits := make([]int32, n)
	maxWorker := p.MaxWorkers()
	var badWorker atomic.Int32
	ForallRange(p, r, func(c Ctx, i int) {
		if i < r.Begin || i >= r.End {
			t.Errorf("%s: index %d outside range", name, i)
			return
		}
		if c.Worker < 0 || c.Worker >= maxWorker {
			badWorker.Add(1)
		}
		atomic.AddInt32(&hits[i-r.Begin], 1)
	})
	for k, h := range hits {
		if h != 1 {
			t.Fatalf("%s: index %d hit %d times, want exactly 1", name, r.Begin+k, h)
		}
	}
	if badWorker.Load() != 0 {
		t.Fatalf("%s: %d iterations saw Worker outside [0,%d)", name, badWorker.Load(), maxWorker)
	}
}

// TestScheduleEquivalenceOnSpawnFallback repeats the coverage check with
// the pool closed, forcing every schedule through the goroutine-spawn
// fallback so both execution paths stay conformant.
func TestScheduleEquivalenceOnSpawnFallback(t *testing.T) {
	pool := NewPool(4)
	pool.Close()
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		for _, r := range []Range{{0, 0}, {0, 1}, {3, 1000}} {
			for _, workers := range []int{2, 5} {
				p := Policy{Kind: Par, Workers: workers, Schedule: sched, Pool: pool}
				name := fmt.Sprintf("closed-pool/%v/w%d/%v", sched, workers, r)
				checkCoverage(t, name, p, r)
			}
		}
	}
}

// TestSchedulesAgreeOnReduction verifies a ReduceSum computes the same
// total under every schedule: lanes are private per Ctx.Worker, so any
// worker-index aliasing between schedules would corrupt the sum. Integer
// elements make the check exact regardless of accumulation order.
func TestSchedulesAgreeOnReduction(t *testing.T) {
	const n = 100_001
	want := int64(n) * int64(n-1) / 2
	for _, kind := range []PolicyKind{Par, GPU} {
		for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
			for _, workers := range []int{1, 3, 8} {
				p := Policy{Kind: kind, Workers: workers, Schedule: sched}
				sum := NewReduceSum[int64](p, 0)
				Forall(p, n, func(c Ctx, i int) { sum.Add(c, int64(i)) })
				if got := sum.Get(); got != want {
					t.Errorf("%v/%v/w%d: sum = %d, want %d", kind, sched, workers, got, want)
				}
			}
		}
	}
}
