package raja

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReduceSumMatchesSequential(t *testing.T) {
	const n = 10000
	x := make([]float64, n)
	want := 0.0
	for i := range x {
		x[i] = float64(i%13) * 0.5
		want += x[i]
	}
	for _, p := range testPolicies {
		r := NewReduceSum(p, 1.5)
		Forall(p, n, func(c Ctx, i int) { r.Add(c, x[i]) })
		if got := r.Get(); math.Abs(got-(want+1.5)) > 1e-9*want {
			t.Errorf("policy %v: sum = %v, want %v", p, got, want+1.5)
		}
	}
}

func TestReduceSumReset(t *testing.T) {
	p := ParPolicy(4)
	r := NewReduceSum(p, 0.0)
	Forall(p, 100, func(c Ctx, i int) { r.Add(c, 1) })
	if r.Get() != 100 {
		t.Fatalf("first pass sum = %v, want 100", r.Get())
	}
	r.Reset(5)
	if r.Get() != 5 {
		t.Fatalf("after reset sum = %v, want 5", r.Get())
	}
	Forall(p, 10, func(c Ctx, i int) { r.Add(c, 2) })
	if r.Get() != 25 {
		t.Fatalf("second pass sum = %v, want 25", r.Get())
	}
}

func TestReduceMinMax(t *testing.T) {
	const n = 5000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	x[1234] = -9.5
	x[4321] = 7.25
	for _, p := range testPolicies {
		mn := NewReduceMin(p, math.Inf(1))
		mx := NewReduceMax(p, math.Inf(-1))
		Forall(p, n, func(c Ctx, i int) {
			mn.Min(c, x[i])
			mx.Max(c, x[i])
		})
		if mn.Get() != -9.5 {
			t.Errorf("policy %v: min = %v, want -9.5", p, mn.Get())
		}
		if mx.Get() != 7.25 {
			t.Errorf("policy %v: max = %v, want 7.25", p, mx.Get())
		}
	}
}

func TestReduceMinRespectsInit(t *testing.T) {
	p := ParPolicy(2)
	mn := NewReduceMin(p, -100.0)
	Forall(p, 100, func(c Ctx, i int) { mn.Min(c, float64(i)) })
	if mn.Get() != -100 {
		t.Fatalf("min = %v, want init value -100", mn.Get())
	}
}

func TestReduceMinLocFindsFirstOccurrence(t *testing.T) {
	const n = 4000
	x := make([]float64, n)
	for i := range x {
		x[i] = 10
	}
	x[700] = -3
	x[2900] = -3 // tie: location must resolve to 700
	for _, p := range testPolicies {
		r := NewReduceMinLoc(p, math.Inf(1), -1)
		Forall(p, n, func(c Ctx, i int) { r.MinLoc(c, x[i], i) })
		got := r.Get()
		if got.Val != -3 || got.Loc != 700 {
			t.Errorf("policy %v: minloc = (%v,%d), want (-3,700)", p, got.Val, got.Loc)
		}
	}
}

func TestReduceIntTypes(t *testing.T) {
	p := GPUPolicy(128)
	s := NewReduceSum[int64](p, 0)
	mx := NewReduceMax[int](p, math.MinInt64)
	Forall(p, 1000, func(c Ctx, i int) {
		s.Add(c, int64(i))
		mx.Max(c, i*3)
	})
	if s.Get() != 999*1000/2 {
		t.Errorf("int64 sum = %d, want %d", s.Get(), 999*1000/2)
	}
	if mx.Get() != 2997 {
		t.Errorf("int max = %d, want 2997", mx.Get())
	}
}

func TestMultiReduceSum(t *testing.T) {
	const n, bins = 9000, 7
	for _, p := range testPolicies {
		m := NewMultiReduceSum[float64](p, bins)
		Forall(p, n, func(c Ctx, i int) { m.Add(c, i%bins, 1) })
		got := make([]float64, bins)
		m.GetAll(got)
		for b := 0; b < bins; b++ {
			want := float64(n / bins)
			if n%bins > b {
				want++
			}
			if got[b] != want {
				t.Errorf("policy %v: bin %d = %v, want %v", p, b, got[b], want)
			}
			if m.Get(b) != got[b] {
				t.Errorf("policy %v: Get(%d) != GetAll", p, b)
			}
		}
	}
}

// Property: for any input vector, the parallel reduction equals the
// sequential reduction exactly when summing integers.
func TestQuickReduceSumIntEquivalence(t *testing.T) {
	f := func(xs []int32) bool {
		var want int64
		for _, v := range xs {
			want += int64(v)
		}
		p := ParPolicy(5)
		r := NewReduceSum[int64](p, 0)
		Forall(p, len(xs), func(c Ctx, i int) { r.Add(c, int64(xs[i])) })
		return r.Get() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min/max reducers agree with a sequential fold for any input.
func TestQuickReduceMinMaxEquivalence(t *testing.T) {
	f := func(xs []float32) bool {
		p := GPUPolicy(16)
		mn := NewReduceMin(p, float32(math.Inf(1)))
		mx := NewReduceMax(p, float32(math.Inf(-1)))
		Forall(p, len(xs), func(c Ctx, i int) {
			mn.Min(c, xs[i])
			mx.Max(c, xs[i])
		})
		wantMin, wantMax := float32(math.Inf(1)), float32(math.Inf(-1))
		for _, v := range xs {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		return mn.Get() == wantMin && mx.Get() == wantMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceMaxLocFindsFirstOccurrence(t *testing.T) {
	const n = 4000
	x := make([]float64, n)
	for i := range x {
		x[i] = -10
	}
	x[900] = 42
	x[3100] = 42 // tie: location must resolve to 900
	for _, p := range testPolicies {
		r := NewReduceMaxLoc(p, math.Inf(-1), -1)
		Forall(p, n, func(c Ctx, i int) { r.MaxLoc(c, x[i], i) })
		got := r.Get()
		if got.Val != 42 || got.Loc != 900 {
			t.Errorf("policy %v: maxloc = (%v,%d), want (42,900)", p, got.Val, got.Loc)
		}
	}
	// Empty fold returns the initial pair.
	r := NewReduceMaxLoc(SeqPolicy(), 7.5, 3)
	if got := r.Get(); got.Val != 7.5 || got.Loc != 3 {
		t.Errorf("empty maxloc = %+v", got)
	}
}
