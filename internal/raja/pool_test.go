package raja

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolReusesWorkers verifies the executor is actually persistent:
// many dispatches must not grow the goroutine count beyond the pool's
// parked workers.
func TestPoolReusesWorkers(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	p := Policy{Kind: Par, Workers: 4, Pool: pool}

	// Warm up: start the workers.
	Forall(p, 1000, func(c Ctx, i int) {})
	runtime.Gosched()
	base := runtime.NumGoroutine()

	for rep := 0; rep < 500; rep++ {
		Forall(p, 1000, func(c Ctx, i int) {})
	}
	if g := runtime.NumGoroutine(); g > base+2 {
		t.Fatalf("goroutines grew from %d to %d across 500 dispatches; pool is not persistent", base, g)
	}
}

// TestPoolLazyStart verifies a pool spawns no goroutines until its first
// parallel dispatch.
func TestPoolLazyStart(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool(8)
	defer pool.Close()
	if g := runtime.NumGoroutine(); g != before {
		t.Fatalf("NewPool started goroutines: %d -> %d", before, g)
	}
	Forall(Policy{Kind: Par, Workers: 8, Pool: pool}, 100, func(c Ctx, i int) {})
	if g := runtime.NumGoroutine(); g < before+1 {
		t.Fatalf("first dispatch did not start workers: %d -> %d", before, g)
	}
}

// TestPoolCloseReleasesWorkersAndStillComputes verifies Close parks the
// pool for good, that dispatches after Close still compute correctly via
// the spawn fallback, and that Close is idempotent.
func TestPoolCloseReleasesWorkersAndStillComputes(t *testing.T) {
	pool := NewPool(4)
	p := Policy{Kind: Par, Workers: 4, Pool: pool}
	Forall(p, 1000, func(c Ctx, i int) {})

	before := runtime.NumGoroutine()
	pool.Close()
	pool.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() >= before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g >= before {
		t.Errorf("workers did not exit after Close: %d -> %d goroutines", before, g)
	}

	hits := make([]int32, 5000)
	Forall(p, len(hits), func(c Ctx, i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("after Close: index %d hit %d times", i, h)
		}
	}
}

// TestPoolNestedForall verifies a parallel region issued from inside a
// pool worker falls back to spawning instead of deadlocking, and still
// covers every index exactly once.
func TestPoolNestedForall(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	p := Policy{Kind: Par, Workers: 4, Pool: pool}

	const ni, nj = 64, 257
	hits := make([]int32, ni*nj)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Forall(p, ni, func(c Ctx, i int) {
			Forall(p, nj, func(c2 Ctx, j int) {
				atomic.AddInt32(&hits[i*nj+j], 1)
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Forall deadlocked")
	}
	for idx, h := range hits {
		if h != 1 {
			t.Fatalf("nested: cell %d hit %d times", idx, h)
		}
	}
}

// TestPoolConcurrentForalls verifies concurrent parallel regions on one
// pool stay correct: one wins the pool, the rest fall back to spawning.
func TestPoolConcurrentForalls(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	p := Policy{Kind: Par, Workers: 4, Pool: pool}

	const callers, n = 8, 10_000
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := make([]int32, n)
			for rep := 0; rep < 20; rep++ {
				for i := range hits {
					hits[i] = 0
				}
				Forall(p, n, func(c Ctx, i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						errs <- "index " + itoa(i) + " hit " + itoa(int(h)) + " times"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestDynamicDegenerateBlockCtx verifies the single-worker dynamic path
// reports the same block-granular Ctx semantics as the multi-worker
// path: every iteration sees Block == position/blocksize, Worker == 0,
// and blocks arrive in ascending order.
func TestDynamicDegenerateBlockCtx(t *testing.T) {
	const block, lo, hi = 7, 10, 95
	single := Policy{Kind: GPU, Workers: 1, Block: block}

	var order []int
	ForallRange(single, Range{lo, hi}, func(c Ctx, i int) {
		if c.Worker != 0 {
			t.Fatalf("index %d: Worker = %d on single-lane path", i, c.Worker)
		}
		if want := (i - lo) / block; c.Block != want {
			t.Fatalf("index %d: Block = %d, want %d", i, c.Block, want)
		}
		order = append(order, i)
	})
	for k := 1; k < len(order); k++ {
		if order[k] != order[k-1]+1 {
			t.Fatalf("single-lane dynamic path visited %d after %d; want block-sequential order",
				order[k], order[k-1])
		}
	}

	// The multi-worker path must report the identical Block for each
	// index (assignment to workers varies; block identity does not).
	multi := Policy{Kind: GPU, Workers: 3, Block: block}
	blocks := make([]int32, hi-lo)
	ForallRange(multi, Range{lo, hi}, func(c Ctx, i int) {
		atomic.StoreInt32(&blocks[i-lo], int32(c.Block))
	})
	for k, b := range blocks {
		if int(b) != k/block {
			t.Fatalf("multi-lane: index %d reported block %d, want %d", lo+k, b, k/block)
		}
	}
}

// TestStaticCtxBlockMatchesWorker verifies the static schedule reports
// the chunk index through both Worker and Block on pool and spawn paths.
func TestStaticCtxBlockMatchesWorker(t *testing.T) {
	for _, pool := range []*Pool{nil, NewPool(2)} {
		p := Policy{Kind: Par, Workers: 4, Pool: pool}
		var bad atomic.Int32
		Forall(p, 10_000, func(c Ctx, i int) {
			if c.Block != c.Worker {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Fatalf("static schedule: %d iterations saw Block != Worker", bad.Load())
		}
		if pool != nil {
			pool.Close()
		}
	}
}

// TestForallPoolPathAllocs verifies the steady-state pooled Forall path
// does not allocate: that is the point of the persistent executor.
func TestForallPoolPathAllocs(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	x := make([]float64, 10_000)
	body := func(c Ctx, i int) { x[i]++ }
	for _, p := range []Policy{
		{Kind: Par, Workers: 4, Pool: pool},
		{Kind: Par, Workers: 4, Schedule: ScheduleDynamic, Block: 256, Pool: pool},
		{Kind: Par, Workers: 4, Schedule: ScheduleGuided, Pool: pool},
		{Kind: GPU, Workers: 4, Block: 256, Pool: pool},
	} {
		Forall(p, len(x), body) // warm up the workers
		avg := testing.AllocsPerRun(100, func() { Forall(p, len(x), body) })
		if avg > 1 {
			t.Errorf("policy %+v: %.1f allocs per pooled Forall, want ~0", p, avg)
		}
	}
}

// TestPoolStaticChunksMatchesSpawn verifies the skeleton API covers
// [0, n) with the same chunk geometry as the pre-pool goroutine version,
// including degenerate inputs.
func TestPoolStaticChunksMatchesSpawn(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	for _, n := range []int{0, 1, 2, 5, 100, 1023} {
		for _, workers := range []int{1, 2, 3, 8, 100} {
			var mu sync.Mutex
			type span struct{ w, lo, hi int }
			var got []span
			used := pool.StaticChunks(workers, n, func(w, lo, hi int) {
				mu.Lock()
				got = append(got, span{w, lo, hi})
				mu.Unlock()
			})
			covered := make([]int, n)
			maxW := -1
			for _, s := range got {
				for i := s.lo; i < s.hi; i++ {
					covered[i]++
				}
				if s.w > maxW {
					maxW = s.w
				}
			}
			for i, cnt := range covered {
				if cnt != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, cnt)
				}
			}
			if maxW >= used {
				t.Fatalf("n=%d workers=%d: chunk index %d >= used %d", n, workers, maxW, used)
			}
		}
	}
}

// TestPoolDynamicBlocksCoverage verifies the dynamic skeleton covers the
// range in whole blocks at every worker count.
func TestPoolDynamicBlocksCoverage(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, n := range []int{1, 7, 100, 1000} {
		for _, workers := range []int{1, 2, 4, 16} {
			for _, block := range []int{1, 7, 256} {
				covered := make([]int32, n)
				pool.DynamicBlocks(workers, block, n, func(lo, hi int) {
					if hi-lo > block || lo%block != 0 {
						t.Errorf("n=%d w=%d block=%d: span [%d,%d) not block-granular",
							n, workers, block, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&covered[i], 1)
					}
				})
				for i, cnt := range covered {
					if cnt != 1 {
						t.Fatalf("n=%d w=%d block=%d: index %d covered %d times",
							n, workers, block, i, cnt)
					}
				}
			}
		}
	}
}

// TestScheduleStringRoundTrip covers Schedule naming and parsing.
func TestScheduleStringRoundTrip(t *testing.T) {
	for sc := ScheduleDefault; sc <= ScheduleGuided; sc++ {
		got, ok := ParseSchedule(sc.String())
		if !ok || got != sc {
			t.Errorf("ParseSchedule(%q) = %v, %v", sc.String(), got, ok)
		}
	}
	if _, ok := ParseSchedule("fifo"); ok {
		t.Error("ParseSchedule accepted an unknown name")
	}
	if Schedule(99).String() != "unknown" {
		t.Error("out-of-range Schedule must stringify as unknown")
	}
}
