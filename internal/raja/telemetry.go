package raja

// Pool telemetry: dispatch-level metrics recorded into a
// telemetry.Registry. The hook is an atomic pointer so enabling it is
// safe while the pool is running, exactly like the Instr and LaneTrace
// services; a pool with telemetry off pays one atomic load per dispatch
// (not per granule). With telemetry on, the dispatch counter and
// in-flight gauge are exact (three uncontended atomic adds), while the
// latency histogram samples one dispatch in dispatchSample — the two
// time.Now calls dominate the per-dispatch cost, and sampling them keeps
// the amortized overhead inside the ≤1% budget that
// BenchmarkPoolDispatchTelemetry measures against BenchmarkForallPar.

import (
	"strconv"
	"sync/atomic"
	"time"

	"rajaperf/internal/telemetry"
)

// dispatchSample is the latency sampling rate: 1 in 8 dispatches times
// its dispatch-to-completion window. Power of two, so the selection is a
// mask test; the first dispatch after enable is always sampled.
const dispatchSample = 8

// poolTele bundles the dispatch-path metric handles, resolved once at
// EnableTelemetry time so the hot path performs zero name lookups.
type poolTele struct {
	dispatches *telemetry.Counter   // pooled dispatches completed (exact)
	dispatchNS *telemetry.Histogram // sampled dispatch-to-completion latency, ns
	fallbacks  *telemetry.Counter   // dispatches that fell back to spawning
	seq        atomic.Uint64        // dispatch ordinal driving the sampler
}

// EnableTelemetry wires this pool's dispatch metrics and liveness gauges
// into reg (nil = telemetry.Default()):
//
//   - raja.pool.dispatches / raja.pool.dispatch_ns — pooled dispatches
//     (exact) and their dispatch-to-completion latency (sampled 1 in
//     dispatchSample, so the histogram count is ~1/8 of the counter);
//   - raja.pool.spawn_fallbacks — dispatches that found the pool busy,
//     closed, or nested, and spawned goroutines instead;
//   - raja.pool.active_dispatches — parallel regions in flight right now
//     (pooled or spawned);
//   - raja.pool.heartbeat, raja.pool.lanes — the liveness counter the
//     watchdogs sample, and the lane count;
//   - raja.pool.busy_sec / granules / steals / lane_busy_sec{lane=...} /
//     lane_steals{lane=...} — utilization and work-stealing totals from
//     the Instr service (zero until Instrument(true)).
//
// Counter and histogram handles are shared by name, so several pools
// enabling telemetry against the same registry aggregate naturally; the
// callback gauges describe one pool and are last-writer-wins — wire them
// from the process's primary pool (the CLIs use Default()).
func (p *Pool) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default()
	}
	p.EnableDispatchTelemetry(reg)
	reg.GaugeFunc("raja.pool.heartbeat", func() float64 { return float64(p.Heartbeat()) })
	reg.GaugeFunc("raja.pool.lanes", func() float64 { return float64(p.Lanes()) })
	reg.GaugeFunc("raja.pool.active_dispatches", func() float64 { return float64(p.active.Load()) })
	reg.GaugeFunc("raja.pool.busy_sec", func() float64 {
		var busy time.Duration
		for _, l := range p.InstrSnapshot() {
			busy += l.Busy
		}
		return busy.Seconds()
	})
	reg.GaugeFunc("raja.pool.granules", func() float64 {
		var n int64
		for _, l := range p.InstrSnapshot() {
			n += l.Granules
		}
		return float64(n)
	})
	reg.GaugeFunc("raja.pool.steals", func() float64 {
		var n int64
		for _, l := range p.InstrSnapshot() {
			n += l.Steals
		}
		return float64(n)
	})
	for lane := 0; lane < p.lanes; lane++ {
		lane := lane
		reg.GaugeFunc(telemetry.Name("raja.pool.lane_busy_sec", "lane", strconv.Itoa(lane)), func() float64 {
			if s := p.InstrSnapshot(); lane < len(s) {
				return s[lane].Busy.Seconds()
			}
			return 0
		})
		reg.GaugeFunc(telemetry.Name("raja.pool.lane_steals", "lane", strconv.Itoa(lane)), func() float64 {
			if s := p.InstrSnapshot(); lane < len(s) {
				return float64(s[lane].Steals)
			}
			return 0
		})
	}
}

// EnableDispatchTelemetry wires only the shared dispatch counters and
// latency histogram — no callback gauges — so short-lived pools (the
// campaign's per-run executors) aggregate into the same
// raja.pool.dispatches / dispatch_ns / spawn_fallbacks series without
// registering per-pool gauges they would outlive.
func (p *Pool) EnableDispatchTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default()
	}
	p.tele.Store(&poolTele{
		dispatches: reg.Counter("raja.pool.dispatches"),
		dispatchNS: reg.Histogram("raja.pool.dispatch_ns"),
		fallbacks:  reg.Counter("raja.pool.spawn_fallbacks"),
	})
}

// noteFallback counts a spawn-fallback dispatch (telemetry on only).
func (p *Pool) noteFallback() {
	if t := p.tele.Load(); t != nil {
		t.fallbacks.Inc()
	}
}

// dispatchStart opens a dispatch measurement window; dispatchEnd closes
// it. Both are nil-cheap: telemetry off costs one atomic pointer load.
// A zero start time means this dispatch was not selected for latency
// sampling — the counters still record it.
func (p *Pool) dispatchStart() (*poolTele, time.Time) {
	t := p.tele.Load()
	if t == nil {
		return nil, time.Time{}
	}
	p.active.Add(1)
	if t.seq.Add(1)&(dispatchSample-1) != 1 {
		return t, time.Time{}
	}
	return t, time.Now()
}

func (p *Pool) dispatchEnd(t *poolTele, start time.Time) {
	if t == nil {
		return
	}
	t.dispatches.Inc()
	if !start.IsZero() {
		t.dispatchNS.Observe(time.Since(start).Nanoseconds())
	}
	p.active.Add(-1)
}
