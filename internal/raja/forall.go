package raja

import (
	"sync"
	"sync/atomic"
	"time"
)

// Ctx carries per-iteration execution context to kernel bodies. Worker is
// a dense index in [0, Policy.MaxWorkers()) identifying the executing
// lane; reducers use it to select a private accumulation slot. Block is
// the ordinal of the scheduling granule the iteration belongs to — the
// chunk index under static scheduling (equal to Worker), the block index
// under dynamic scheduling (the blockIdx analog), and the grab ordinal
// under guided scheduling; it is 0 under Seq. Every schedule reports
// Block identically whether the range runs on one lane or many.
type Ctx struct {
	Worker int
	Block  int
}

// Body is a forall loop body invoked once per index.
type Body func(c Ctx, i int)

// Range is a half-open iteration space [Begin, End).
type Range struct {
	Begin, End int
}

// Len returns the number of iterations in the range.
func (r Range) Len() int {
	if r.End <= r.Begin {
		return 0
	}
	return r.End - r.Begin
}

// RangeN returns the range [0, n).
func RangeN(n int) Range { return Range{0, n} }

// Forall executes body for every index in [0, n) under policy p.
func Forall(p Policy, n int, body Body) {
	ForallRange(p, RangeN(n), body)
}

// ForallRange executes body for every index in r under policy p.
//
// Under Seq the iterations run in order on the calling goroutine. Par and
// GPU dispatch through the policy's persistent worker pool (Policy.Pool,
// defaulting to the shared Default pool): the caller runs lane 0 while
// the pool's parked workers take the remaining lanes, so a dispatch costs
// two channel operations per helper lane rather than a goroutine spawn
// per chunk. The iteration-to-lane mapping follows Policy.Schedule:
// static contiguous chunks (the Par default), dynamic fixed-size blocks
// (the GPU default, mirroring thread-block scheduling), or guided
// shrinking grabs. If the pool is busy — a concurrent or nested parallel
// region — or closed, the range runs on freshly spawned goroutines with
// identical semantics.
func ForallRange(p Policy, r Range, body Body) {
	n := r.Len()
	if n == 0 {
		return
	}
	if p.Kind == Seq {
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body(c, i)
		}
		return
	}
	switch p.schedule() {
	case ScheduleStatic:
		forallStatic(p.pool(), p.workers(), r, body)
	case ScheduleGuided:
		forallGuided(p.pool(), p.workers(), p.guidedMin(), r, body)
	default:
		forallDynamic(p.pool(), p.workers(), p.block(), r, body)
	}
}

// forallStatic splits r into one contiguous chunk per worker (OpenMP's
// default schedule). Ctx.Worker and Ctx.Block are the chunk index.
func forallStatic(pool *Pool, workers int, r Range, body Body) {
	n := r.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body(c, i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	if pool.forallStatic(r, body, chunks, chunk) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallStatic(r, body, chunks, chunk, pool.activeInstr(), pool.activeTrace())
}

// forallDynamic distributes fixed-size blocks across workers from a
// shared cursor, the scheduling shape of a GPU grid. The degenerate
// single-lane path walks the same blocks in the same order, so bodies
// observe identical block-granular Ctx semantics at any worker count.
func forallDynamic(pool *Pool, workers, block int, r Range, body Body) {
	n := r.Len()
	blocks := (n + block - 1) / block
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		c := Ctx{}
		for b := 0; b < blocks; b++ {
			lo := r.Begin + b*block
			hi := lo + block
			if hi > r.End {
				hi = r.End
			}
			c.Block = b
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}
		return
	}
	if pool.forallDynamic(r, body, block, workers) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallDynamic(r, body, block, workers, pool.activeInstr(), pool.activeTrace())
}

// forallGuided hands each worker exponentially shrinking grabs — half the
// remaining range split across lanes, floored at minGrab. The degenerate
// single-lane path performs the same grab sequence so Ctx.Block ordinals
// match the multi-lane path.
func forallGuided(pool *Pool, workers, minGrab int, r Range, body Body) {
	n := r.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := Ctx{}
		for cur := 0; cur < n; {
			take := (n - cur) / 2
			if take < minGrab {
				take = minGrab
			}
			if take > n-cur {
				take = n - cur
			}
			for i := r.Begin + cur; i < r.Begin+cur+take; i++ {
				body(c, i)
			}
			cur += take
			c.Block++
		}
		return
	}
	if pool.forallGuided(r, body, minGrab, workers) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallGuided(r, body, minGrab, workers, pool.activeInstr(), pool.activeTrace())
}

// spawnForallStatic is the goroutine-per-chunk static path, used when the
// pool is unavailable and as the pre-pool baseline in benchmarks. in and
// tr are the pool's observability services, nil when disabled.
func spawnForallStatic(r Range, body Body, chunks, chunk int, in *Instr, tr LaneTrace) {
	var wg sync.WaitGroup
	for w := 0; w < chunks; w++ {
		lo := r.Begin + w*chunk
		hi := lo + chunk
		if hi > r.End {
			hi = r.End
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			var start time.Time
			if in != nil || tr != nil {
				start = time.Now()
			}
			c := Ctx{Worker: w, Block: w}
			for i := lo; i < hi; i++ {
				body(c, i)
			}
			if in != nil || tr != nil {
				d := time.Since(start)
				if in != nil {
					in.granule(w, w, d)
				}
				if tr != nil {
					tr(w, granuleChunk, start, d)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// spawnForallDynamic is the goroutine-per-worker dynamic path, used when
// the pool is unavailable and as the pre-pool baseline in benchmarks.
func spawnForallDynamic(r Range, body Body, block, workers int, in *Instr, tr LaneTrace) {
	n := r.Len()
	blocks := (n + block - 1) / block
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			measured := in != nil || tr != nil
			c := Ctx{Worker: w}
			for {
				b := int(cursor.Add(1) - 1)
				if b >= blocks {
					return
				}
				lo := r.Begin + b*block
				hi := lo + block
				if hi > r.End {
					hi = r.End
				}
				var start time.Time
				if measured {
					start = time.Now()
				}
				c.Block = b
				for i := lo; i < hi; i++ {
					body(c, i)
				}
				if measured {
					d := time.Since(start)
					if in != nil {
						in.granule(w, b%workers, d)
					}
					if tr != nil {
						tr(w, granuleBlock, start, d)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// spawnForallGuided is the goroutine-per-worker guided path, used when
// the pool is unavailable.
func spawnForallGuided(r Range, body Body, minGrab, workers int, in *Instr, tr LaneTrace) {
	n := int64(r.Len())
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		grabs  atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			measured := in != nil || tr != nil
			c := Ctx{Worker: w}
			for {
				cur := cursor.Load()
				if cur >= n {
					return
				}
				take := (n - cur) / int64(2*workers)
				if take < int64(minGrab) {
					take = int64(minGrab)
				}
				if take > n-cur {
					take = n - cur
				}
				if !cursor.CompareAndSwap(cur, cur+take) {
					continue
				}
				c.Block = int(grabs.Add(1) - 1)
				lo := r.Begin + int(cur)
				hi := lo + int(take)
				var start time.Time
				if measured {
					start = time.Now()
				}
				for i := lo; i < hi; i++ {
					body(c, i)
				}
				if measured {
					d := time.Since(start)
					if in != nil {
						in.granule(w, c.Block%workers, d)
					}
					if tr != nil {
						tr(w, granuleGrab, start, d)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Forall2D executes body over the collapsed iteration space
// [0,ni) x [0,nj), distributed according to p (OpenMP collapse(2)).
// Bodies observe j varying fastest, matching the suite's nested-loop
// kernels. Collapsing schedules ni*nj indices instead of ni outer rows,
// so short outer dimensions still balance across every lane, and the
// span-granular dispatch walks (i, j) incrementally — one div/mod per
// scheduling granule rather than one closure call per outer index.
func Forall2D(p Policy, ni, nj int, body func(c Ctx, i, j int)) {
	if ni <= 0 || nj <= 0 {
		return
	}
	forallSpans(p, RangeN(ni*nj), func(c Ctx, lo, hi int) {
		i, j := lo/nj, lo%nj
		for f := lo; f < hi; f++ {
			body(c, i, j)
			j++
			if j == nj {
				j, i = 0, i+1
			}
		}
	})
}

// Forall3D executes body over the collapsed space [0,ni) x [0,nj) x
// [0,nk), distributed according to p with k varying fastest (OpenMP
// collapse(3)).
func Forall3D(p Policy, ni, nj, nk int, body func(c Ctx, i, j, k int)) {
	if ni <= 0 || nj <= 0 || nk <= 0 {
		return
	}
	forallSpans(p, RangeN(ni*nj*nk), func(c Ctx, lo, hi int) {
		i := lo / (nj * nk)
		rem := lo - i*nj*nk
		j, k := rem/nk, rem%nk
		for f := lo; f < hi; f++ {
			body(c, i, j, k)
			k++
			if k == nk {
				k, j = 0, j+1
				if j == nj {
					j, i = 0, i+1
				}
			}
		}
	})
}

// ForallSegments executes body over each index of each segment, mirroring
// RAJA's TypedIndexSet dispatch over a list of ranges. All segments fuse
// into a single pool dispatch over the concatenated index space — the
// schedule balances the total work, not each segment separately, and a
// list of short segments costs one dispatch instead of one per segment.
// Indices within one segment still execute in ascending order on the
// lane that owns them, but segments are not barriers: iterations of
// different segments may run concurrently. Kernels that need segment k
// complete before segment k+1 starts use ForallSegmentsOrdered.
func ForallSegments(p Policy, segs []Range, body Body) {
	total := 0
	for _, s := range segs {
		total += s.Len()
	}
	if total == 0 {
		return
	}
	// ends[k] is the flat offset one past segment k; a granule binary-
	// searches its starting segment once, then walks linearly.
	ends := make([]int, len(segs))
	off := 0
	for k, s := range segs {
		off += s.Len()
		ends[k] = off
	}
	forallSpans(p, RangeN(total), func(c Ctx, lo, hi int) {
		k := 0
		if lo > 0 {
			a, b := 0, len(ends)
			for a < b {
				m := (a + b) / 2
				if ends[m] <= lo {
					a = m + 1
				} else {
					b = m
				}
			}
			k = a
		}
		for f := lo; f < hi; k++ {
			segEnd := ends[k]
			start := segEnd - segs[k].Len()
			stop := hi
			if segEnd < stop {
				stop = segEnd
			}
			base := segs[k].Begin - start
			for ; f < stop; f++ {
				body(c, base+f)
			}
		}
	})
}

// ForallSegmentsOrdered executes the segments one after another, each as
// its own dispatch with a barrier in between — the pre-fusion
// ForallSegments semantics, for bodies that carry a dependence from one
// segment to the next.
func ForallSegmentsOrdered(p Policy, segs []Range, body Body) {
	for _, s := range segs {
		ForallRange(p, s, body)
	}
}
