package raja

import "sync"

// Ctx carries per-iteration execution context to kernel bodies. Worker is a
// dense index in [0, Policy.MaxWorkers()) identifying the executing lane;
// reducers use it to select a private accumulation slot.
type Ctx struct {
	Worker int
}

// Body is a forall loop body invoked once per index.
type Body func(c Ctx, i int)

// Range is a half-open iteration space [Begin, End).
type Range struct {
	Begin, End int
}

// Len returns the number of iterations in the range.
func (r Range) Len() int {
	if r.End <= r.Begin {
		return 0
	}
	return r.End - r.Begin
}

// RangeN returns the range [0, n).
func RangeN(n int) Range { return Range{0, n} }

// Forall executes body for every index in [0, n) under policy p.
func Forall(p Policy, n int, body Body) {
	ForallRange(p, RangeN(n), body)
}

// ForallRange executes body for every index in r under policy p.
// Under Seq the iterations run in order on the calling goroutine. Under Par
// the range is split into one contiguous chunk per worker. Under GPU the
// range is split into blocks of p.Block iterations distributed dynamically
// across workers, mirroring thread-block scheduling.
func ForallRange(p Policy, r Range, body Body) {
	n := r.Len()
	if n == 0 {
		return
	}
	switch p.Kind {
	case Seq:
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body(c, i)
		}
	case Par:
		forallChunked(p.workers(), r, body)
	case GPU:
		forallBlocked(p.workers(), p.block(), r, body)
	}
}

// forallChunked splits r into one contiguous chunk per worker (static
// schedule, like OpenMP's default).
func forallChunked(workers int, r Range, body Body) {
	n := r.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body(c, i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := r.Begin + w*chunk
		hi := lo + chunk
		if hi > r.End {
			hi = r.End
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := Ctx{Worker: w}
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// forallBlocked distributes fixed-size blocks across workers using a shared
// cursor (dynamic schedule), the scheduling shape of a GPU grid.
func forallBlocked(workers, block int, r Range, body Body) {
	n := r.Len()
	blocks := (n + block - 1) / block
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		c := Ctx{}
		for i := r.Begin; i < r.End; i++ {
			body(c, i)
		}
		return
	}
	var (
		wg     sync.WaitGroup
		cursor counter
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := Ctx{Worker: w}
			for {
				b := cursor.next()
				if b >= blocks {
					return
				}
				lo := r.Begin + b*block
				hi := lo + block
				if hi > r.End {
					hi = r.End
				}
				for i := lo; i < hi; i++ {
					body(c, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Forall2D executes body over the iteration space [0,ni) x [0,nj), with the
// outer (i) dimension distributed according to p. Bodies observe j varying
// fastest, matching the suite's nested-loop kernels.
func Forall2D(p Policy, ni, nj int, body func(c Ctx, i, j int)) {
	ForallRange(p, RangeN(ni), func(c Ctx, i int) {
		for j := 0; j < nj; j++ {
			body(c, i, j)
		}
	})
}

// Forall3D executes body over [0,ni) x [0,nj) x [0,nk) with the outer
// dimension distributed according to p and k varying fastest.
func Forall3D(p Policy, ni, nj, nk int, body func(c Ctx, i, j, k int)) {
	ForallRange(p, RangeN(ni), func(c Ctx, i int) {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				body(c, i, j, k)
			}
		}
	})
}

// ForallSegments executes body over each index of each segment, mirroring
// RAJA's TypedIndexSet dispatch over a list of ranges.
func ForallSegments(p Policy, segs []Range, body Body) {
	for _, s := range segs {
		ForallRange(p, s, body)
	}
}
