package raja

import (
	"sync"
	"sync/atomic"
	"time"
)

// spanFunc is the granule-level loop body used by the monomorphized
// dispatch paths: one call per scheduling granule (static chunk, dynamic
// block, guided grab), covering the half-open span [lo, hi). The per-index
// inner loop lives inside the span function — in generic code it is
// stenciled per body type and inlines the body's method — so the closure
// indirection the classic Body path pays per index is paid once per
// granule here, where it amortizes to nothing.
type spanFunc func(c Ctx, lo, hi int)

// forallSpans executes span over r's scheduling granules under p. The Ctx
// handed to each span call carries the same Worker/Block values the
// per-index Body path reports for the indices of that granule, so
// reducers and instrumentation observe identical lane semantics on both
// paths. Degenerate single-lane cases walk the same granule sequence as
// the multi-lane paths.
func forallSpans(p Policy, r Range, span spanFunc) {
	if r.Len() == 0 {
		return
	}
	if p.Kind == Seq {
		span(Ctx{}, r.Begin, r.End)
		return
	}
	switch p.schedule() {
	case ScheduleStatic:
		forallSpanStatic(p.pool(), p.workers(), r, span)
	case ScheduleGuided:
		forallSpanGuided(p.pool(), p.workers(), p.guidedMin(), r, span)
	default:
		forallSpanDynamic(p.pool(), p.workers(), p.block(), r, span)
	}
}

// forallSpanStatic mirrors forallStatic at span granularity: one
// contiguous chunk per worker, Ctx.Worker == Ctx.Block == chunk index.
func forallSpanStatic(pool *Pool, workers int, r Range, span spanFunc) {
	n := r.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		span(Ctx{}, r.Begin, r.End)
		return
	}
	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	if pool.forallSpanStatic(r, span, chunks, chunk) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallSpanStatic(r, span, chunks, chunk, pool.activeInstr(), pool.activeTrace())
}

// forallSpanDynamic mirrors forallDynamic at span granularity: fixed-size
// blocks from a shared cursor, Ctx.Block the block ordinal.
func forallSpanDynamic(pool *Pool, workers, block int, r Range, span spanFunc) {
	n := r.Len()
	blocks := (n + block - 1) / block
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		c := Ctx{}
		for b := 0; b < blocks; b++ {
			lo := r.Begin + b*block
			hi := lo + block
			if hi > r.End {
				hi = r.End
			}
			c.Block = b
			span(c, lo, hi)
		}
		return
	}
	if pool.forallSpanDynamic(r, span, block, workers) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallSpanDynamic(r, span, block, workers, pool.activeInstr(), pool.activeTrace())
}

// forallSpanGuided mirrors forallGuided at span granularity: shrinking
// grabs, Ctx.Block the grab ordinal.
func forallSpanGuided(pool *Pool, workers, minGrab int, r Range, span spanFunc) {
	n := r.Len()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c := Ctx{}
		for cur := 0; cur < n; {
			take := (n - cur) / 2
			if take < minGrab {
				take = minGrab
			}
			if take > n-cur {
				take = n - cur
			}
			span(c, r.Begin+cur, r.Begin+cur+take)
			cur += take
			c.Block++
		}
		return
	}
	if pool.forallSpanGuided(r, span, minGrab, workers) {
		return
	}
	pool.beats.Add(1)
	pool.noteFallback()
	spawnForallSpanGuided(r, span, minGrab, workers, pool.activeInstr(), pool.activeTrace())
}

// spawnForallSpanStatic is the goroutine-per-chunk static span path, used
// when the pool is busy or closed. It wires the same instrumentation and
// trace services as the pooled path, so specialized dispatches stay
// observable on the fallback route too.
func spawnForallSpanStatic(r Range, span spanFunc, chunks, chunk int, in *Instr, tr LaneTrace) {
	var wg sync.WaitGroup
	for w := 0; w < chunks; w++ {
		lo := r.Begin + w*chunk
		hi := lo + chunk
		if hi > r.End {
			hi = r.End
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			var start time.Time
			if in != nil || tr != nil {
				start = time.Now()
			}
			span(Ctx{Worker: w, Block: w}, lo, hi)
			if in != nil || tr != nil {
				d := time.Since(start)
				if in != nil {
					in.granule(w, w, d)
				}
				if tr != nil {
					tr(w, granuleChunk, start, d)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// spawnForallSpanDynamic is the goroutine-per-worker dynamic span path.
func spawnForallSpanDynamic(r Range, span spanFunc, block, workers int, in *Instr, tr LaneTrace) {
	n := r.Len()
	blocks := (n + block - 1) / block
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			measured := in != nil || tr != nil
			c := Ctx{Worker: w}
			for {
				b := int(cursor.Add(1) - 1)
				if b >= blocks {
					return
				}
				lo := r.Begin + b*block
				hi := lo + block
				if hi > r.End {
					hi = r.End
				}
				var start time.Time
				if measured {
					start = time.Now()
				}
				c.Block = b
				span(c, lo, hi)
				if measured {
					d := time.Since(start)
					if in != nil {
						in.granule(w, b%workers, d)
					}
					if tr != nil {
						tr(w, granuleBlock, start, d)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// spawnForallSpanGuided is the goroutine-per-worker guided span path.
func spawnForallSpanGuided(r Range, span spanFunc, minGrab, workers int, in *Instr, tr LaneTrace) {
	n := int64(r.Len())
	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
		grabs  atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if in != nil {
				in.wake(w)
			}
			measured := in != nil || tr != nil
			c := Ctx{Worker: w}
			for {
				cur := cursor.Load()
				if cur >= n {
					return
				}
				take := (n - cur) / int64(2*workers)
				if take < int64(minGrab) {
					take = int64(minGrab)
				}
				if take > n-cur {
					take = n - cur
				}
				if !cursor.CompareAndSwap(cur, cur+take) {
					continue
				}
				c.Block = int(grabs.Add(1) - 1)
				lo := r.Begin + int(cur)
				hi := lo + int(take)
				var start time.Time
				if measured {
					start = time.Now()
				}
				span(c, lo, hi)
				if measured {
					d := time.Since(start)
					if in != nil {
						in.granule(w, c.Block%workers, d)
					}
					if tr != nil {
						tr(w, granuleGrab, start, d)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
