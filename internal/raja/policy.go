// Package raja is a pure-Go performance-portability layer modeled on the
// RAJA C++ abstraction (Beckingsale et al., P3HPC 2019). Kernel bodies are
// written once and dispatched to different execution back-ends through an
// execution Policy: sequential, fork-join parallel (the OpenMP analog), or
// block-scheduled parallel (the GPU analog used by the simulated devices).
//
// The package provides the RAJA feature set exercised by the RAJA
// Performance Suite: forall and nested-loop dispatch, reductions, atomic
// operations, multi-dimensional views, scans, sorts, and workgroups for
// fused kernel launches.
package raja

import "runtime"

// PolicyKind identifies the execution back-end used by Forall and friends.
type PolicyKind int

const (
	// Seq executes iterations in order on the calling goroutine.
	Seq PolicyKind = iota
	// Par executes iterations on a pool of goroutines with contiguous
	// chunking, the shared-memory analog of an OpenMP parallel-for.
	Par
	// GPU executes iterations in fixed-size blocks scheduled across a
	// pool of goroutines, mirroring thread-block scheduling on a GPU.
	// The block size is the tuning parameter studied by the suite.
	GPU
)

// String returns the conventional short name for the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case Seq:
		return "seq"
	case Par:
		return "par"
	case GPU:
		return "gpu"
	default:
		return "unknown"
	}
}

// Policy selects an execution back-end and its parameters.
type Policy struct {
	Kind PolicyKind
	// Workers is the number of execution lanes used by Par and GPU
	// policies. Zero means runtime.GOMAXPROCS(0).
	Workers int
	// Block is the iteration block size for dynamic scheduling (zero
	// means DefaultBlock) and the minimum grab for guided scheduling
	// (zero means GuidedMinGrab). Static schedules ignore it.
	Block int
	// Schedule maps iterations onto workers under Par and GPU policies.
	// ScheduleDefault means static chunking for Par and dynamic block
	// scheduling for GPU.
	Schedule Schedule
	// Pool is the persistent executor parallel policies dispatch through.
	// Nil means the shared Default() pool.
	Pool *Pool
}

// DefaultBlock is the GPU block size used when Policy.Block is zero,
// matching the suite's default CUDA/HIP block size.
const DefaultBlock = 256

// SeqPolicy returns a sequential execution policy.
func SeqPolicy() Policy { return Policy{Kind: Seq} }

// ParPolicy returns a parallel policy over n workers (0 = all cores).
func ParPolicy(n int) Policy { return Policy{Kind: Par, Workers: n} }

// GPUPolicy returns a block-scheduled policy with the given block size
// (0 = DefaultBlock) over all cores.
func GPUPolicy(block int) Policy { return Policy{Kind: GPU, Block: block} }

// workers resolves the effective worker count for the policy.
func (p Policy) workers() int {
	if p.Kind == Seq {
		return 1
	}
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// block resolves the effective block size for the policy.
func (p Policy) block() int {
	if p.Block > 0 {
		return p.Block
	}
	return DefaultBlock
}

// guidedMin resolves the guided schedule's minimum grab size.
func (p Policy) guidedMin() int {
	if p.Block > 0 {
		return p.Block
	}
	return GuidedMinGrab
}

// schedule resolves ScheduleDefault by policy kind.
func (p Policy) schedule() Schedule {
	if p.Schedule != ScheduleDefault {
		return p.Schedule
	}
	if p.Kind == GPU {
		return ScheduleDynamic
	}
	return ScheduleStatic
}

// pool resolves the executor pool for the policy.
func (p Policy) pool() *Pool {
	if p.Pool != nil {
		return p.Pool
	}
	return Default()
}

// MaxWorkers reports the number of distinct Ctx.Worker values Forall may
// pass to a body under this policy. Reducers size their lanes with it.
func (p Policy) MaxWorkers() int { return p.workers() }
