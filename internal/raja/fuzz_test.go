package raja

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// valuesFromSeed derives n float64 values that are small integers, so
// their sum is exact in float64 no matter how additions interleave —
// permutation-invariant inputs, as the conformance contract for
// AtomicAddFloat64 requires.
func valuesFromSeed(seed int64, n int) ([]float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = float64(rng.Intn(1<<20) - 1<<19)
		sum += vals[i]
	}
	return vals, sum
}

// FuzzAtomicAddFloat64 checks the CAS loop loses no update under
// concurrency: goroutines race adds into one accumulator and the total
// must equal the exact sequential sum.
func FuzzAtomicAddFloat64(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(8))
	f.Add(int64(-7), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, workers uint8) {
		g := int(workers%16) + 2
		vals, want := valuesFromSeed(seed, 1024)
		var total float64
		var wg sync.WaitGroup
		chunk := (len(vals) + g - 1) / g
		for w := 0; w < g; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(vals) {
				hi = len(vals)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				for _, v := range part {
					AtomicAddFloat64(&total, v)
				}
			}(vals[lo:hi])
		}
		wg.Wait()
		if total != want {
			t.Fatalf("concurrent atomic sum = %v, want exactly %v (seed %d, %d workers)",
				total, want, seed, g)
		}
	})
}

// FuzzAtomicMinMaxFloat64 checks the min/max CAS folds against
// sequential oracles under concurrency.
func FuzzAtomicMinMaxFloat64(f *testing.F) {
	f.Add(int64(3), uint8(4))
	f.Add(int64(99), uint8(13))
	f.Fuzz(func(t *testing.T, seed int64, workers uint8) {
		g := int(workers%8) + 2
		vals, _ := valuesFromSeed(seed, 512)
		wantMin, wantMax := vals[0], vals[0]
		for _, v := range vals {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		gotMin, gotMax := vals[0], vals[0]
		var wg sync.WaitGroup
		chunk := (len(vals) + g - 1) / g
		for w := 0; w < g; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(vals) {
				hi = len(vals)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				for _, v := range part {
					AtomicMinFloat64(&gotMin, v)
					AtomicMaxFloat64(&gotMax, v)
				}
			}(vals[lo:hi])
		}
		wg.Wait()
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("atomic min/max = %v/%v, want %v/%v", gotMin, gotMax, wantMin, wantMax)
		}
	})
}

// fuzzPolicies are the parallel policies the scan/sort oracles run under.
func fuzzPolicies() []Policy {
	return []Policy{
		SeqPolicy(),
		ParPolicy(2),
		ParPolicy(5),
		{Kind: Par, Workers: 4, Schedule: ScheduleDynamic, Block: 3},
		{Kind: Par, Workers: 4, Schedule: ScheduleGuided},
		GPUPolicy(16),
	}
}

// FuzzScanSum checks InclusiveScanSum and ExclusiveScanSum against the
// sequential prefix-sum oracle. Integer elements make the comparison
// exact even though the parallel scan reassociates additions.
func FuzzScanSum(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 17, 42, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 250, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := make([]int64, len(data))
		for i, b := range data {
			src[i] = int64(b) - 128
		}
		wantInc := make([]int64, len(src))
		wantExc := make([]int64, len(src))
		var acc int64
		for i, v := range src {
			wantExc[i] = acc
			acc += v
			wantInc[i] = acc
		}
		for _, p := range fuzzPolicies() {
			got := make([]int64, len(src))
			InclusiveScanSum(p, got, src)
			for i := range got {
				if got[i] != wantInc[i] {
					t.Fatalf("policy %+v: inclusive scan[%d] = %d, want %d", p, i, got[i], wantInc[i])
				}
			}
			ExclusiveScanSum(p, got, src)
			for i := range got {
				if got[i] != wantExc[i] {
					t.Fatalf("policy %+v: exclusive scan[%d] = %d, want %d", p, i, got[i], wantExc[i])
				}
			}
		}
	})
}

// FuzzSort checks the parallel merge sort against sort.Float64s.
func FuzzSort(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 8, 200, 1, 255, 0, 0, 0, 5, 4, 3, 2, 1, 77, 66, 55, 44, 33, 22, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Two bytes per element so duplicates and near-duplicates occur.
		n := len(data) / 2
		base := make([]float64, n)
		for i := 0; i < n; i++ {
			base[i] = float64(int(data[2*i])<<8|int(data[2*i+1])) - 32768
		}
		want := append([]float64(nil), base...)
		sort.Float64s(want)
		for _, p := range fuzzPolicies() {
			got := append([]float64(nil), base...)
			Sort(p, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("policy %+v: sorted[%d] = %v, want %v", p, i, got[i], want[i])
				}
			}
		}
	})
}

// FuzzSortPairs checks key ordering and stable value permutation against
// a sequential stable-sort oracle.
func FuzzSortPairs(f *testing.F) {
	f.Add([]byte{2, 1, 2, 1, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := make([]int64, len(data))
		vals := make([]int, len(data))
		for i, b := range data {
			keys[i] = int64(b % 8) // few distinct keys: exercises stability
			vals[i] = i
		}
		type kv struct {
			k int64
			v int
		}
		oracle := make([]kv, len(data))
		for i := range oracle {
			oracle[i] = kv{keys[i], vals[i]}
		}
		sort.SliceStable(oracle, func(a, b int) bool { return oracle[a].k < oracle[b].k })
		for _, p := range fuzzPolicies() {
			k := append([]int64(nil), keys...)
			v := append([]int(nil), vals...)
			SortPairs(p, k, v)
			for i := range k {
				if k[i] != oracle[i].k || v[i] != oracle[i].v {
					t.Fatalf("policy %+v: pair %d = (%d,%d), want (%d,%d)",
						p, i, k[i], v[i], oracle[i].k, oracle[i].v)
				}
			}
		}
	})
}
