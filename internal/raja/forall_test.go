package raja

import (
	"sync/atomic"
	"testing"
)

var testPolicies = []Policy{
	SeqPolicy(),
	ParPolicy(0),
	ParPolicy(1),
	ParPolicy(3),
	GPUPolicy(0),
	GPUPolicy(64),
	{Kind: GPU, Workers: 2, Block: 7},
}

func TestForallCoversEveryIndexOnce(t *testing.T) {
	for _, p := range testPolicies {
		for _, n := range []int{0, 1, 2, 7, 100, 1023} {
			hits := make([]int32, n)
			Forall(p, n, func(c Ctx, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("policy %v n=%d: index %d hit %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForallRangeRespectsBounds(t *testing.T) {
	for _, p := range testPolicies {
		var lo, hi atomic.Int64
		lo.Store(1 << 30)
		hi.Store(-1)
		ForallRange(p, Range{10, 55}, func(c Ctx, i int) {
			for {
				cur := lo.Load()
				if int64(i) >= cur || lo.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			for {
				cur := hi.Load()
				if int64(i) <= cur || hi.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		})
		if lo.Load() != 10 || hi.Load() != 54 {
			t.Fatalf("policy %v: observed bounds [%d,%d], want [10,54]", p, lo.Load(), hi.Load())
		}
	}
}

func TestForallEmptyAndReversedRange(t *testing.T) {
	for _, p := range testPolicies {
		ran := false
		ForallRange(p, Range{5, 5}, func(c Ctx, i int) { ran = true })
		ForallRange(p, Range{9, 3}, func(c Ctx, i int) { ran = true })
		if ran {
			t.Fatalf("policy %v: body ran on empty range", p)
		}
	}
}

func TestForallWorkerIndexInBounds(t *testing.T) {
	for _, p := range testPolicies {
		max := p.MaxWorkers()
		var bad atomic.Int64
		Forall(p, 5000, func(c Ctx, i int) {
			if c.Worker < 0 || c.Worker >= max {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Fatalf("policy %v: %d iterations saw out-of-range worker", p, bad.Load())
		}
	}
}

func TestForallSeqIsOrdered(t *testing.T) {
	prev := -1
	ok := true
	Forall(SeqPolicy(), 1000, func(c Ctx, i int) {
		if i != prev+1 {
			ok = false
		}
		prev = i
	})
	if !ok || prev != 999 {
		t.Fatal("sequential policy did not iterate in order")
	}
}

func TestForall2DAnd3DCoverage(t *testing.T) {
	for _, p := range testPolicies {
		const ni, nj, nk = 13, 7, 5
		hits2 := make([]int32, ni*nj)
		Forall2D(p, ni, nj, func(c Ctx, i, j int) {
			atomic.AddInt32(&hits2[i*nj+j], 1)
		})
		for idx, h := range hits2 {
			if h != 1 {
				t.Fatalf("policy %v: 2D cell %d hit %d times", p, idx, h)
			}
		}
		hits3 := make([]int32, ni*nj*nk)
		Forall3D(p, ni, nj, nk, func(c Ctx, i, j, k int) {
			atomic.AddInt32(&hits3[(i*nj+j)*nk+k], 1)
		})
		for idx, h := range hits3 {
			if h != 1 {
				t.Fatalf("policy %v: 3D cell %d hit %d times", p, idx, h)
			}
		}
	}
}

func TestForallSegments(t *testing.T) {
	segs := []Range{{0, 5}, {10, 12}, {20, 20}, {30, 33}}
	want := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true,
		10: true, 11: true, 30: true, 31: true, 32: true}
	for _, p := range testPolicies {
		got := make([]int32, 40)
		ForallSegments(p, segs, func(c Ctx, i int) {
			atomic.AddInt32(&got[i], 1)
		})
		for i := range got {
			if want[i] && got[i] != 1 {
				t.Fatalf("policy %v: index %d hit %d times, want 1", p, i, got[i])
			}
			if !want[i] && got[i] != 0 {
				t.Fatalf("policy %v: index %d outside segments was hit", p, i)
			}
		}
	}
}

func TestPolicyResolution(t *testing.T) {
	if SeqPolicy().MaxWorkers() != 1 {
		t.Error("Seq policy must have exactly one worker lane")
	}
	if got := ParPolicy(7).MaxWorkers(); got != 7 {
		t.Errorf("ParPolicy(7).MaxWorkers() = %d, want 7", got)
	}
	if ParPolicy(0).MaxWorkers() < 1 {
		t.Error("default worker count must be at least 1")
	}
	if got := (Policy{Kind: GPU}).block(); got != DefaultBlock {
		t.Errorf("default block = %d, want %d", got, DefaultBlock)
	}
	for k, want := range map[PolicyKind]string{Seq: "seq", Par: "par", GPU: "gpu", PolicyKind(99): "unknown"} {
		if k.String() != want {
			t.Errorf("PolicyKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
