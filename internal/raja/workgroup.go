package raja

// WorkGroup collects many small loop bodies and dispatches them as a single
// fused launch, mirroring RAJA::WorkGroup. The suite's HALO_*_FUSED kernels
// use it to amortize per-launch overhead across the many short pack/unpack
// loops of a halo exchange.
type WorkGroup struct {
	items []workItem
}

type workItem struct {
	n    int
	body Body
}

// Enqueue adds a loop of n iterations over body to the group.
func (g *WorkGroup) Enqueue(n int, body Body) {
	g.items = append(g.items, workItem{n: n, body: body})
}

// Len reports the number of enqueued loops.
func (g *WorkGroup) Len() int { return len(g.items) }

// TotalIterations reports the summed iteration count of all enqueued loops.
func (g *WorkGroup) TotalIterations() int {
	t := 0
	for _, it := range g.items {
		t += it.n
	}
	return t
}

// Run executes every enqueued loop under a single fused dispatch and clears
// the group. Under parallel policies whole items are distributed across
// workers dynamically; iterations of one item never split across workers,
// matching the warp-per-loop dispatch of RAJA's GPU workgroup.
func (g *WorkGroup) Run(p Policy) {
	items := g.items
	g.items = g.items[:0]
	if len(items) == 0 {
		return
	}
	workers := p.workers()
	if p.Kind == Seq || workers <= 1 || len(items) == 1 {
		c := Ctx{}
		for _, it := range items {
			for i := 0; i < it.n; i++ {
				it.body(c, i)
			}
		}
		return
	}
	// Distribute whole items dynamically across the policy's pool: one
	// forall index per item, block size 1, so iterations of one item
	// never split across workers.
	pp := chunkLoopPolicy(p)
	pp.Workers = workers
	ForallRange(pp, RangeN(len(items)), func(c Ctx, k int) {
		it := items[k]
		for i := 0; i < it.n; i++ {
			it.body(c, i)
		}
	})
}
