package raja

import (
	"sync/atomic"
	"testing"
	"time"
)

// triangularBody returns a body whose per-index cost grows linearly with
// the index — deliberately skewed work that static chunking must
// misbalance (the last chunk holds the most expensive indices) and
// dynamic/guided scheduling should smooth out. The cost is a sleep, not
// a spin: sleeping lanes release the CPU, so the lanes genuinely overlap
// and per-lane busy time reflects assigned work even on a single-core
// CI machine where spinning lanes would just time-slice.
func triangularBody(sink *[]float64) Body {
	y := *sink
	return func(c Ctx, i int) {
		time.Sleep(time.Duration(i) * 100 * time.Microsecond)
		y[i] = 1
	}
}

// runSkewed executes the triangular workload under sched on a freshly
// instrumented pool and returns the measured imbalance. When spawned is
// true the pool is closed first, forcing the spawn-fallback dispatch
// path (which must be instrumented identically).
func runSkewed(t *testing.T, sched Schedule, spawned bool) Imbalance {
	t.Helper()
	const lanes, n = 4, 64
	pool := NewPool(lanes)
	defer pool.Close()
	pool.Instrument(true)
	if spawned {
		pool.Close()
	}
	y := make([]float64, n)
	p := Policy{Kind: Par, Workers: lanes, Schedule: sched, Block: 4, Pool: pool}
	before := pool.InstrSnapshot()
	Forall(p, n, triangularBody(&y))
	after := pool.InstrSnapshot()
	for i := range y {
		if y[i] == 0 {
			t.Fatalf("schedule %v: index %d not executed", sched, i)
		}
	}
	return ComputeImbalance(before, after)
}

// TestImbalanceSkewedSchedules is the load-imbalance conformance check:
// triangular work shows large imbalance under static chunking that
// shrinks under dynamic and guided scheduling, on both the pooled and
// the spawn-fallback paths.
func TestImbalanceSkewedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive imbalance measurement")
	}
	for _, path := range []struct {
		name    string
		spawned bool
	}{{"pooled", false}, {"spawned", true}} {
		t.Run(path.name, func(t *testing.T) {
			static := runSkewed(t, ScheduleStatic, path.spawned)
			dynamic := runSkewed(t, ScheduleDynamic, path.spawned)
			guided := runSkewed(t, ScheduleGuided, path.spawned)
			t.Logf("%s: static %.1f%%, dynamic %.1f%%, guided %.1f%%",
				path.name, static.Pct, dynamic.Pct, guided.Pct)
			// Triangular work over 4 static chunks puts ~7x more work on
			// the last lane than the first: max/avg = 1.75, i.e. ~43%
			// imbalance. Allow wide scheduling noise.
			if static.Pct < 20 {
				t.Errorf("static imbalance = %.1f%%, want the skew visible (>= 20%%)", static.Pct)
			}
			if dynamic.Pct >= static.Pct {
				t.Errorf("dynamic imbalance %.1f%% did not shrink below static %.1f%%",
					dynamic.Pct, static.Pct)
			}
			if guided.Pct >= static.Pct {
				t.Errorf("guided imbalance %.1f%% did not shrink below static %.1f%%",
					guided.Pct, static.Pct)
			}
			if static.Steals != 0 {
				t.Errorf("static scheduling reported %d steals, want 0", static.Steals)
			}
		})
	}
}

// TestInstrGranuleAccounting pins the granule, wake, and steal counters
// to the schedule arithmetic.
func TestInstrGranuleAccounting(t *testing.T) {
	const lanes = 4
	pool := NewPool(lanes)
	defer pool.Close()
	pool.Instrument(true)
	y := make([]float64, 1000)
	body := func(c Ctx, i int) { y[i]++ }

	before := pool.InstrSnapshot()
	Forall(Policy{Kind: Par, Workers: lanes, Pool: pool}, 1000, body)
	im := ComputeImbalance(before, pool.InstrSnapshot())
	if im.Granules != lanes {
		t.Errorf("static granules = %d, want %d chunks", im.Granules, lanes)
	}
	if im.Steals != 0 {
		t.Errorf("static steals = %d, want 0", im.Steals)
	}
	if im.Wakes != lanes {
		t.Errorf("static wakes = %d, want %d", im.Wakes, lanes)
	}

	before = pool.InstrSnapshot()
	Forall(Policy{Kind: GPU, Workers: lanes, Block: 100, Pool: pool}, 1000, body)
	im = ComputeImbalance(before, pool.InstrSnapshot())
	if im.Granules != 10 {
		t.Errorf("dynamic granules = %d, want 10 blocks", im.Granules)
	}
	if im.Wakes != lanes {
		t.Errorf("dynamic wakes = %d, want %d", im.Wakes, lanes)
	}
}

// TestInstrDisabledCostsNothing verifies the uninstrumented path records
// nothing and InstrSnapshot stays nil until Instrument(true).
func TestInstrDisabledCostsNothing(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	if snap := pool.InstrSnapshot(); snap != nil {
		t.Fatalf("snapshot before Instrument = %v, want nil", snap)
	}
	y := make([]float64, 100)
	Forall(Policy{Kind: Par, Workers: 2, Pool: pool}, 100, func(c Ctx, i int) { y[i]++ })
	if snap := pool.InstrSnapshot(); snap != nil {
		t.Fatalf("uninstrumented dispatch produced a snapshot: %v", snap)
	}
	pool.Instrument(true)
	Forall(Policy{Kind: Par, Workers: 2, Pool: pool}, 100, func(c Ctx, i int) { y[i]++ })
	im := ComputeImbalance(nil, pool.InstrSnapshot())
	if im.Granules == 0 {
		t.Error("instrumented dispatch recorded no granules")
	}
	pool.Instrument(false)
	before := pool.InstrSnapshot()
	Forall(Policy{Kind: Par, Workers: 2, Pool: pool}, 100, func(c Ctx, i int) { y[i]++ })
	im = ComputeImbalance(before, pool.InstrSnapshot())
	if im.Granules != 0 {
		t.Errorf("disabled instrumentation still recorded %d granules", im.Granules)
	}
}

// TestComputeImbalanceUnit checks the imbalance arithmetic directly.
func TestComputeImbalanceUnit(t *testing.T) {
	after := []LaneSnapshot{
		{Busy: 4 * time.Second, Granules: 4},
		{Busy: 2 * time.Second, Granules: 2},
		{}, // idle lane: excluded
	}
	im := ComputeImbalance(nil, after)
	if im.Lanes != 2 {
		t.Errorf("lanes = %d, want 2 (idle excluded)", im.Lanes)
	}
	if im.Max != 4*time.Second || im.Min != 2*time.Second || im.Avg != 3*time.Second {
		t.Errorf("max/min/avg = %v/%v/%v", im.Max, im.Min, im.Avg)
	}
	if im.Pct != 25 {
		t.Errorf("pct = %v, want 25", im.Pct)
	}
	balanced := ComputeImbalance(nil, []LaneSnapshot{
		{Busy: time.Second, Granules: 1}, {Busy: time.Second, Granules: 1},
	})
	if balanced.Pct != 0 {
		t.Errorf("balanced pct = %v, want 0", balanced.Pct)
	}
	if empty := ComputeImbalance(nil, nil); empty.Lanes != 0 || empty.Pct != 0 {
		t.Errorf("empty imbalance = %+v", empty)
	}
}

// TestLaneTraceHook verifies the per-granule trace hook fires once per
// scheduling granule on pooled and spawned paths, concurrently safely.
func TestLaneTraceHook(t *testing.T) {
	const lanes = 4
	pool := NewPool(lanes)
	defer pool.Close()
	var events atomic.Int64
	pool.SetLaneTrace(func(lane int, name string, start time.Time, dur time.Duration) {
		if name != granuleBlock {
			t.Errorf("granule kind = %q, want %q", name, granuleBlock)
		}
		events.Add(1)
	})
	y := make([]float64, 1000)
	body := func(c Ctx, i int) { y[i]++ }
	Forall(Policy{Kind: GPU, Workers: lanes, Block: 100, Pool: pool}, 1000, body)
	if got := events.Load(); got != 10 {
		t.Errorf("pooled trace events = %d, want 10 blocks", got)
	}

	events.Store(0)
	pool.Close() // force the spawn fallback
	Forall(Policy{Kind: GPU, Workers: lanes, Block: 100, Pool: pool}, 1000, body)
	if got := events.Load(); got != 10 {
		t.Errorf("spawned trace events = %d, want 10 blocks", got)
	}

	pool.SetLaneTrace(nil)
	events.Store(0)
	Forall(Policy{Kind: GPU, Workers: lanes, Block: 100, Pool: pool}, 1000, body)
	if got := events.Load(); got != 0 {
		t.Errorf("removed hook still fired %d times", got)
	}
}
