package tma

import (
	"math"
	"testing"

	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
)

// streamMix is a TRIAD-shaped kernel: 2 flops, 2 loads, 1 store per
// element, unit stride, streaming working set far beyond cache.
func streamMix() kernels.Mix {
	return kernels.Mix{
		Flops: 2, Loads: 2, Stores: 1,
		Pattern:         kernels.AccessUnit,
		ILP:             4,
		WorkingSetBytes: 768e6,
		FootprintKB:     0.3,
	}
}

// gemmMix is a tiled matrix-multiply-shaped kernel: FMA-dense with high
// cache reuse.
func gemmMix() kernels.Mix {
	return kernels.Mix{
		Flops: 2, Loads: 2, Stores: 0.01,
		Pattern: kernels.AccessUnit, Reuse: 0.97,
		ILP:             2,
		WorkingSetBytes: 24e6,
		FootprintKB:     2,
	}
}

func TestMetricsSumToOne(t *testing.T) {
	for _, m := range []*machine.Machine{machine.SPRDDR(), machine.SPRHBM()} {
		md, err := NewModel(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, mix := range []kernels.Mix{streamMix(), gemmMix(),
			{Flops: 10, Loads: 3, Stores: 1, Branches: 2, BrMissRate: 0.2,
				Pattern: kernels.AccessRandom, WorkingSetBytes: 1e9}} {
			r := md.Analyze(mix, kernels.AnalyticMetrics{}, 32_000_000)
			v := r.Metrics.Vector()
			sum := 0.0
			for _, x := range v {
				if x < -1e-12 || x > 1+1e-12 {
					t.Fatalf("%s: component out of range: %v", m, v)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: TMA tuple sums to %v, want 1", m, sum)
			}
		}
	}
}

func TestStreamKernelIsMemoryBoundOnDDR(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	r := md.Analyze(streamMix(), kernels.AnalyticMetrics{}, 32_000_000)
	if r.Metrics.Dominant() != "memory_bound" {
		t.Fatalf("stream kernel on SPR-DDR dominant = %s (%v), want memory_bound",
			r.Metrics.Dominant(), r.Metrics)
	}
	if r.Metrics.MemoryBound < 0.6 {
		t.Errorf("stream memory bound = %.3f, want > 0.6", r.Metrics.MemoryBound)
	}
}

func TestHBMReducesMemoryBound(t *testing.T) {
	ddr, _ := NewModel(machine.SPRDDR())
	hbm, _ := NewModel(machine.SPRHBM())
	const n = 32_000_000
	mix := streamMix()
	rd := ddr.Analyze(mix, kernels.AnalyticMetrics{}, n)
	rh := hbm.Analyze(mix, kernels.AnalyticMetrics{}, n)
	if rh.Metrics.MemoryBound >= rd.Metrics.MemoryBound {
		t.Errorf("HBM memory bound %.3f !< DDR %.3f",
			rh.Metrics.MemoryBound, rd.Metrics.MemoryBound)
	}
	// Paper Fig 7/9: memory-bound kernels speed up ~2-2.6x on SPR-HBM.
	speedup := rd.SecondsPerRep / rh.SecondsPerRep
	if speedup < 1.5 || speedup > 5 {
		t.Errorf("stream HBM speedup = %.2f, want within [1.5, 5]", speedup)
	}
}

func TestComputeKernelNotMemoryBound(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	r := md.Analyze(gemmMix(), kernels.AnalyticMetrics{}, 32_000_000)
	if r.Metrics.MemoryBound > 0.3 {
		t.Errorf("GEMM-like memory bound = %.3f, want < 0.3 (%v)",
			r.Metrics.MemoryBound, r.Metrics)
	}
	if r.Metrics.Retiring+r.Metrics.CoreBound < 0.5 {
		t.Errorf("GEMM-like retiring+core = %.3f, want > 0.5 (%v)",
			r.Metrics.Retiring+r.Metrics.CoreBound, r.Metrics)
	}
	// And HBM should barely help it (paper: clusters 1/3 gain < 1x).
	hbm, _ := NewModel(machine.SPRHBM())
	rh := hbm.Analyze(gemmMix(), kernels.AnalyticMetrics{}, 32_000_000)
	speedup := r.SecondsPerRep / rh.SecondsPerRep
	if speedup > 1.3 {
		t.Errorf("compute-bound HBM speedup = %.2f, want ~1", speedup)
	}
}

func TestBranchyKernelShowsBadSpeculation(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	mix := kernels.Mix{
		Flops: 4, Loads: 2, Stores: 1, Branches: 1, BrMissRate: 0.25,
		Pattern: kernels.AccessUnit, WorkingSetBytes: 8e6, Reuse: 0.5,
	}
	r := md.Analyze(mix, kernels.AnalyticMetrics{}, 32_000_000)
	if r.Metrics.BadSpeculation < 0.05 {
		t.Errorf("branchy kernel bad speculation = %.3f, want > 0.05 (%v)",
			r.Metrics.BadSpeculation, r.Metrics)
	}
}

func TestBigBodyKernelShowsFrontendPressure(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	small := kernels.Mix{Flops: 30, Loads: 8, Stores: 0.5, ILP: 4,
		Pattern: kernels.AccessUnit, Reuse: 0.9, WorkingSetBytes: 1e6, FootprintKB: 1}
	big := small
	big.FootprintKB = 64
	rs := md.Analyze(small, kernels.AnalyticMetrics{}, 32_000_000)
	rb := md.Analyze(big, kernels.AnalyticMetrics{}, 32_000_000)
	if rb.Metrics.FrontendBound <= rs.Metrics.FrontendBound {
		t.Errorf("frontend bound %.3f !> %.3f for larger instruction footprint",
			rb.Metrics.FrontendBound, rs.Metrics.FrontendBound)
	}
	if rb.Metrics.FrontendBound < 0.08 {
		t.Errorf("big-body frontend bound = %.3f, want > 0.08", rb.Metrics.FrontendBound)
	}
}

func TestNewModelRejectsGPUMachines(t *testing.T) {
	if _, err := NewModel(machine.P9V100()); err == nil {
		t.Error("NewModel must reject GPU machines")
	}
}

func TestCountersPopulated(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	r := md.Analyze(streamMix(), kernels.AnalyticMetrics{Flops: 64e6}, 32_000_000)
	for _, key := range []string{"PAPI_TOT_INS", "PAPI_TOT_CYC", "slots", "dram_bytes"} {
		if r.Counters[key] <= 0 {
			t.Errorf("counter %s = %v, want > 0", key, r.Counters[key])
		}
	}
	if r.SecondsPerRep <= 0 || r.CyclesPerIter <= 0 {
		t.Error("modeled time must be positive")
	}
}

func TestHierarchyShape(t *testing.T) {
	h := Hierarchy()
	if len(h.Children) != 4 {
		t.Fatalf("level 1 has %d categories, want 4", len(h.Children))
	}
	var backend *Node
	for i := range h.Children {
		if h.Children[i].Name == "Backend Bound" {
			backend = &h.Children[i]
		}
	}
	if backend == nil || len(backend.Children) != 2 {
		t.Fatal("Backend Bound must split into Core Bound and Memory Bound")
	}
}

func TestDominantAndString(t *testing.T) {
	m := Metrics{MemoryBound: 0.9, Retiring: 0.1}
	if m.Dominant() != "memory_bound" {
		t.Errorf("Dominant = %s", m.Dominant())
	}
	if m.BackendBound() != 0.9 {
		t.Errorf("BackendBound = %v", m.BackendBound())
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}
