// Package tma implements a Top-Down Microarchitecture Analysis (TMA) model
// for the simulated CPU systems, standing in for the PAPI hardware counters
// the paper collects on Sapphire Rapids (Yasin, ISPASS 2014; paper Fig 2).
//
// The model performs pipeline-slot accounting driven by each kernel's
// instruction-mix descriptor and the machine's microarchitectural
// parameters, producing the level-1 breakdown (Frontend Bound, Bad
// Speculation, Retiring, Backend Bound) with the backend split into Core
// Bound and Memory Bound — the 5-tuple the paper clusters kernels on.
package tma

import (
	"fmt"
	"math"

	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
)

// Metrics is the top-down 5-tuple for one kernel on one machine. The five
// fields are fractions of total pipeline slots and sum to 1.
type Metrics struct {
	FrontendBound  float64
	BadSpeculation float64
	Retiring       float64
	CoreBound      float64
	MemoryBound    float64
}

// BackendBound returns the level-1 backend fraction (core + memory).
func (m Metrics) BackendBound() float64 { return m.CoreBound + m.MemoryBound }

// Vector returns the tuple in the paper's clustering order: frontend, bad
// speculation, retiring, core bound, memory bound.
func (m Metrics) Vector() []float64 {
	return []float64{m.FrontendBound, m.BadSpeculation, m.Retiring, m.CoreBound, m.MemoryBound}
}

// Dominant returns the name of the largest category.
func (m Metrics) Dominant() string {
	names := []string{"frontend_bound", "bad_speculation", "retiring", "core_bound", "memory_bound"}
	v := m.Vector()
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return names[best]
}

// String formats the tuple compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("fe=%.3f bs=%.3f ret=%.3f core=%.3f mem=%.3f",
		m.FrontendBound, m.BadSpeculation, m.Retiring, m.CoreBound, m.MemoryBound)
}

// Result carries the slot breakdown plus the modeled execution profile.
type Result struct {
	Metrics Metrics
	// CyclesPerIter is the modeled core cycles spent per kernel
	// iteration (one unit of problem size).
	CyclesPerIter float64
	// SecondsPerRep is the modeled node-level wall time of one rep.
	SecondsPerRep float64
	// Counters holds PAPI-style raw counter values per rep, suitable
	// for recording into Caliper profiles.
	Counters map[string]float64
}

// Model evaluates the top-down breakdown of a kernel on a CPU machine.
type Model struct {
	mach *machine.Machine
}

// NewModel returns a TMA model for m, which must be a CPU machine.
func NewModel(m *machine.Machine) (*Model, error) {
	if m.Kind != machine.CPU || m.CPU == nil {
		return nil, fmt.Errorf("tma: machine %s is not a CPU system", m)
	}
	return &Model{mach: m}, nil
}

// Analyze models one kernel at node problem size n (total iterations per
// node per rep). The mix describes per-iteration behavior; am gives the
// per-rep analytic byte/flop totals used for bandwidth accounting.
func (md *Model) Analyze(mix kernels.Mix, am kernels.AnalyticMetrics, n int) Result {
	cpu := md.mach.CPU
	if n <= 0 {
		n = 1
	}

	// Effective vectorization: unit-stride, non-atomic bodies vectorize
	// over the machine's FP64 lanes; masked vectorization tolerates mild
	// branching.
	vec := 1.0
	switch {
	case mix.Scalar:
		// strict-FP chains or complex control keep the body scalar
	case mix.Pattern == kernels.AccessUnit && mix.Atomics == 0 && mix.BrMissRate < 0.10:
		vec = float64(cpu.SIMDDoubles)
	case mix.Pattern == kernels.AccessStrided && mix.Atomics == 0:
		vec = float64(cpu.SIMDDoubles) / 2
	}

	// Retired slots per iteration: vector ops amortize lanes, scalar
	// bookkeeping does not. Loop control adds ~2 instructions per
	// vector-width elements.
	instr := mix.Flops/vec + (mix.Loads+mix.Stores)/vec + mix.IntOps +
		mix.Branches + 2.0/vec + 4*mix.Atomics

	// Instruction-level parallelism cap: dependent chains keep real
	// kernels well under the issue width.
	ilp := mix.ILPOrDefault()
	if ilp > float64(cpu.IssueWidth) {
		ilp = float64(cpu.IssueWidth)
	}

	// Core execution cycles: dependence-limited issue vs FP throughput.
	// The FP ceiling is calibrated to the machine's achieved fraction
	// (Table II's MAT_MAT_SHARED probe), not the theoretical FMA rate.
	retireCyc := instr / float64(cpu.IssueWidth)
	issueCyc := instr / ilp
	effFlopsPerCyc := md.mach.PeakTFLOPSNode * 1e12 * md.mach.AchievedFlopsFrac /
		(float64(cpu.Cores) * cpu.FreqGHz * 1e9)
	fpCyc := mix.Flops / effFlopsPerCyc
	if vec == 1 {
		// Scalar code cannot reach the vector FP ceiling.
		fpCyc = math.Max(fpCyc, mix.Flops/(2*float64(cpu.FMAPerCycle)))
	}
	// Locked RMW cost: spread atomics stall in the store path (TMA books
	// them as memory/store bound); a contended single-line hotspot
	// serializes in the core instead.
	atomCyc := mix.Atomics * 20
	coreCyc := math.Max(issueCyc, fpCyc)
	atomMemCyc := 0.0
	if mix.WorkingSetBytes >= 4096 {
		atomMemCyc = atomCyc
	} else {
		coreCyc += atomCyc
	}

	// Memory cycles: DRAM-level traffic per iteration determined by the
	// cache-resident share of the working set, plus a latency term for
	// irregular access that prefetchers cannot hide.
	dramFrac := md.dramFraction(mix)
	bytesIter := 8 * (mix.Loads*(1-mix.Reuse) + mix.Stores) * dramFrac
	bwNode := md.mach.AchievedBWTBsNode() * 1e12 // bytes/s
	bwPerCoreCyc := bwNode / float64(cpu.Cores) / (cpu.FreqGHz * 1e9)
	memCyc := 0.0
	if bwPerCoreCyc > 0 {
		memCyc = bytesIter / bwPerCoreCyc
	}
	// Latency exposure for irregular patterns (limited MLP). Regular
	// access misses once per 64-byte line and prefetchers hide nearly
	// all of it; irregular access misses per element with little
	// memory-level parallelism.
	mlp := map[kernels.AccessPattern]float64{
		kernels.AccessUnit:     32,
		kernels.AccessStrided:  12,
		kernels.AccessIndirect: 4,
		kernels.AccessRandom:   2,
	}[mix.Pattern]
	linesPerAccess := map[kernels.AccessPattern]float64{
		kernels.AccessUnit:     1.0 / 8,
		kernels.AccessStrided:  1.0 / 2,
		kernels.AccessIndirect: 1,
		kernels.AccessRandom:   1,
	}[mix.Pattern]
	misses := (mix.Loads*(1-mix.Reuse) + mix.Stores) * dramFrac * linesPerAccess
	latCyc := misses * cpu.MemLatencyNs * cpu.FreqGHz / mlp
	if latCyc > memCyc {
		memCyc = latCyc
	}

	// Frontend cycles: pressure grows with the body's instruction
	// footprint relative to the instruction cache.
	fePressure := 0.02 + 0.9*math.Min(1.2, mix.FootprintKB/48.0)
	feCyc := instr / float64(cpu.FrontendWidth) * fePressure

	// Bad speculation cycles: mispredicted branches flush the pipe.
	bsCyc := mix.Branches * mix.BrMissRate * cpu.BrMissPenaltyCyc

	// Memory stalls overlap partially with core execution.
	memStall := math.Max(0, memCyc-0.35*coreCyc) + atomMemCyc

	totalCyc := coreCyc + memStall + feCyc + bsCyc
	totalSlots := float64(cpu.IssueWidth) * totalCyc

	retiring := instr / totalSlots
	badspec := float64(cpu.IssueWidth) * bsCyc / totalSlots
	frontend := float64(cpu.IssueWidth) * feCyc / totalSlots
	backend := math.Max(0, 1-retiring-badspec-frontend)

	coreStall := math.Max(0, coreCyc-retireCyc) + 1e-12
	memShare := memStall / (memStall + coreStall)

	m := Metrics{
		FrontendBound:  frontend,
		BadSpeculation: badspec,
		Retiring:       retiring,
		CoreBound:      backend * (1 - memShare),
		MemoryBound:    backend * memShare,
	}
	m = normalize(m)

	// Node-level time: iterations are decomposed across ranks pinned one
	// per core; every rep pays a small dispatch/barrier overhead, and
	// Comm kernels add their communication share on top.
	ranks := md.mach.Ranks
	if ranks > cpu.Cores {
		ranks = cpu.Cores
	}
	itersPerCore := float64(n) / float64(ranks)
	sec := itersPerCore * totalCyc / (cpu.FreqGHz * 1e9)
	sec += 5e-6 // per-rep dispatch overhead
	if mix.MPIFraction > 0 && mix.MPIFraction < 1 {
		sec = sec / (1 - mix.MPIFraction)
	}

	counters := map[string]float64{
		"PAPI_TOT_INS":  instr * float64(n),
		"PAPI_TOT_CYC":  totalCyc * float64(n),
		"PAPI_FP_OPS":   am.Flops,
		"PAPI_LD_INS":   mix.Loads * float64(n),
		"PAPI_SR_INS":   mix.Stores * float64(n),
		"PAPI_BR_MSP":   mix.Branches * mix.BrMissRate * float64(n),
		"PAPI_BR_INS":   mix.Branches * float64(n),
		"PAPI_RES_STL":  (memStall + math.Max(0, coreCyc-retireCyc)) * float64(n),
		"dram_bytes":    bytesIter * float64(n),
		"slots":         totalSlots * float64(n),
		"slots_retired": instr * float64(n),
	}

	return Result{
		Metrics:       m,
		CyclesPerIter: totalCyc,
		SecondsPerRep: sec,
		Counters:      counters,
	}
}

// dramFraction estimates the share of per-iteration traffic that reaches
// DRAM, from the working set relative to the caches available to one rank.
func (md *Model) dramFraction(mix kernels.Mix) float64 {
	cpu := md.mach.CPU
	// With every core streaming, the shared LLC is heavily contended and
	// even private L2 thrashes between array passes; only a fraction of
	// a rank's nominal cache holds useful data.
	cachePerRank := 0.75*float64(cpu.L2KB)*1024 +
		0.2*float64(cpu.L3MBNode)*1024*1024/float64(cpu.Cores)
	ws := mix.WorkingSetBytes
	if ws <= 0 {
		return 0.05
	}
	// Below ~0.8x of the cache the data is resident (only cold misses);
	// past ~1.5x an LRU-managed cache thrashes on streaming access and
	// essentially everything reaches DRAM.
	r := ws / cachePerRank
	switch {
	case r <= 0.8:
		return 0.04
	case r >= 1.5:
		return 1.0
	default:
		return 0.04 + (1.0-0.04)*(r-0.8)/0.7
	}
}

func normalize(m Metrics) Metrics {
	s := m.FrontendBound + m.BadSpeculation + m.Retiring + m.CoreBound + m.MemoryBound
	if s <= 0 {
		return Metrics{Retiring: 1}
	}
	m.FrontendBound /= s
	m.BadSpeculation /= s
	m.Retiring /= s
	m.CoreBound /= s
	m.MemoryBound /= s
	return m
}

// Hierarchy describes the top-down tree of Fig 2, for documentation and
// the fig2 experiment output.
type Node struct {
	Name     string
	Children []Node
}

// Hierarchy returns the TMA category tree (Fig 2): the four level-1
// categories with the backend split into core and memory levels.
func Hierarchy() Node {
	return Node{
		Name: "Pipeline Slots",
		Children: []Node{
			{Name: "Frontend Bound", Children: []Node{
				{Name: "Fetch Latency"}, {Name: "Fetch Bandwidth"},
			}},
			{Name: "Bad Speculation", Children: []Node{
				{Name: "Branch Mispredicts"}, {Name: "Machine Clears"},
			}},
			{Name: "Retiring", Children: []Node{
				{Name: "Base"}, {Name: "Microcode Sequencer"},
			}},
			{Name: "Backend Bound", Children: []Node{
				{Name: "Core Bound", Children: []Node{
					{Name: "Divider"}, {Name: "Ports Utilization"},
				}},
				{Name: "Memory Bound", Children: []Node{
					{Name: "L1 Bound"}, {Name: "L2 Bound"},
					{Name: "L3 Bound"}, {Name: "DRAM Bound"},
					{Name: "Store Bound"},
				}},
			}},
		},
	}
}
