package tma

import (
	"math"
	"testing"
	"testing/quick"

	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
)

// mixFromSeed builds a bounded random-but-valid instruction mix.
func mixFromSeed(a, b, c, d, e uint8) kernels.Mix {
	return kernels.Mix{
		Flops:           float64(a%64) + 0.5,
		Loads:           float64(b % 16),
		Stores:          float64(c % 8),
		IntOps:          float64(d % 8),
		Branches:        float64(e%4) * 0.5,
		BrMissRate:      float64(a%11) / 20,
		Atomics:         float64(b % 3),
		Pattern:         kernels.AccessPattern(c % 4),
		Reuse:           float64(d%10) / 10,
		ILP:             1 + float64(e%5),
		WorkingSetBytes: math.Pow(10, 3+float64(a%6)),
		FootprintKB:     float64(b%80) + 0.2,
	}
}

// Property: any valid mix yields a TMA tuple of nonnegative fractions
// summing to one, positive time, and finite counters.
func TestQuickTupleValidity(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	f := func(a, b, c, d, e uint8) bool {
		mix := mixFromSeed(a, b, c, d, e)
		r := md.Analyze(mix, kernels.AnalyticMetrics{Flops: 1e6}, 1_000_000)
		sum := 0.0
		for _, v := range r.Metrics.Vector() {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		if !(r.SecondsPerRep > 0) || !(r.CyclesPerIter > 0) {
			return false
		}
		for _, v := range r.Counters {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: more memory bandwidth never makes any kernel slower, and never
// raises its memory-bound fraction.
func TestQuickBandwidthMonotonicity(t *testing.T) {
	ddr, _ := NewModel(machine.SPRDDR())
	hbm, _ := NewModel(machine.SPRHBM())
	f := func(a, b, c, d, e uint8) bool {
		mix := mixFromSeed(a, b, c, d, e)
		// Equalize non-bandwidth machine differences: both SPR models
		// share compute parameters, so only bandwidth (and memory
		// latency, slightly higher on HBM) differs. Allow a small
		// latency-driven tolerance.
		rd := ddr.Analyze(mix, kernels.AnalyticMetrics{}, 1_000_000)
		rh := hbm.Analyze(mix, kernels.AnalyticMetrics{}, 1_000_000)
		if rh.SecondsPerRep > rd.SecondsPerRep*1.35 {
			return false
		}
		return rh.Metrics.MemoryBound <= rd.Metrics.MemoryBound+0.30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding flops to a mix never reduces modeled time.
func TestQuickFlopsMonotonicity(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	f := func(a, b, c, d, e uint8) bool {
		mix := mixFromSeed(a, b, c, d, e)
		r1 := md.Analyze(mix, kernels.AnalyticMetrics{}, 1_000_000)
		mix.Flops *= 4
		r2 := md.Analyze(mix, kernels.AnalyticMetrics{}, 1_000_000)
		return r2.SecondsPerRep >= r1.SecondsPerRep*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: problem size scales time linearly (no hidden nonlinearity).
func TestQuickSizeLinearity(t *testing.T) {
	md, _ := NewModel(machine.SPRDDR())
	f := func(a, b, c, d, e uint8) bool {
		mix := mixFromSeed(a, b, c, d, e)
		r1 := md.Analyze(mix, kernels.AnalyticMetrics{}, 1_000_000)
		r2 := md.Analyze(mix, kernels.AnalyticMetrics{}, 4_000_000)
		// Subtract the constant dispatch overhead before comparing.
		t1 := r1.SecondsPerRep - 5e-6
		t2 := r2.SecondsPerRep - 5e-6
		if t1 <= 0 {
			return true
		}
		ratio := t2 / t1
		return ratio > 3.99 && ratio < 4.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
