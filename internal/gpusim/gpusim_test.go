package gpusim

import (
	"math"
	"testing"

	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
)

func v100() *Device {
	d, err := NewDevice(machine.P9V100())
	if err != nil {
		panic(err)
	}
	return d
}

func mi250x() *Device {
	d, err := NewDevice(machine.EPYCMI250X())
	if err != nil {
		panic(err)
	}
	return d
}

func streamMix() kernels.Mix {
	return kernels.Mix{
		Flops: 2, Loads: 2, Stores: 1,
		Pattern:         kernels.AccessUnit,
		WorkingSetBytes: 768e6,
	}
}

func TestNewDeviceRejectsCPU(t *testing.T) {
	if _, err := NewDevice(machine.SPRDDR()); err == nil {
		t.Error("NewDevice must reject CPU machines")
	}
}

func TestStreamKernelIsDRAMBound(t *testing.T) {
	r := v100().Run(streamMix(), Launch{Items: 32_000_000, BlockSize: 256})
	if r.Bottleneck != "dram" {
		t.Errorf("stream bottleneck = %s, want dram", r.Bottleneck)
	}
	if r.SecondsPerRep <= 0 {
		t.Error("time must be positive")
	}
}

func TestCoalescingReducesTransactions(t *testing.T) {
	d := v100()
	unit := streamMix()
	random := streamMix()
	random.Pattern = kernels.AccessRandom
	ru := d.Run(unit, Launch{Items: 1 << 20, BlockSize: 256})
	rr := d.Run(random, Launch{Items: 1 << 20, BlockSize: 256})
	if ru.Counters.L1GlobalLoad >= rr.Counters.L1GlobalLoad {
		t.Errorf("coalesced L1 loads %v !< random %v",
			ru.Counters.L1GlobalLoad, rr.Counters.L1GlobalLoad)
	}
	// A fully coalesced warp-wide double access is 8 sectors on a
	// 32-thread warp; random is 32: a 4x ratio.
	ratio := rr.Counters.L1GlobalLoad / ru.Counters.L1GlobalLoad
	if math.Abs(ratio-4) > 0.5 {
		t.Errorf("random/coalesced transaction ratio = %.2f, want ~4", ratio)
	}
}

func TestCacheHierarchyConservation(t *testing.T) {
	// Transactions must not grow as they move down the hierarchy.
	for _, mix := range []kernels.Mix{
		streamMix(),
		{Flops: 2, Loads: 2, Stores: 0.01, Pattern: kernels.AccessUnit,
			Reuse: 0.95, WorkingSetBytes: 4e6},
		{Flops: 1, Loads: 3, Stores: 1, Pattern: kernels.AccessRandom,
			WorkingSetBytes: 2e9},
	} {
		r := v100().Run(mix, Launch{Items: 1 << 22, BlockSize: 256})
		l1 := r.Counters.L1GlobalLoad
		l2 := r.Counters.L2Read
		dr := r.Counters.DRAMRead
		if l2 > l1*(1+1e-9) || dr > l2*(1+1e-9) {
			t.Errorf("read transactions grew down-hierarchy: L1=%v L2=%v DRAM=%v", l1, l2, dr)
		}
	}
}

func TestReuseLowersDRAMTraffic(t *testing.T) {
	d := v100()
	noReuse := streamMix()
	cached := streamMix()
	cached.Reuse = 0.9
	cached.WorkingSetBytes = 1e6 // fits in L2
	r0 := d.Run(noReuse, Launch{Items: 1 << 22, BlockSize: 256})
	r1 := d.Run(cached, Launch{Items: 1 << 22, BlockSize: 256})
	if r1.Counters.DRAMRead >= r0.Counters.DRAMRead {
		t.Errorf("cached DRAM reads %v !< streaming %v",
			r1.Counters.DRAMRead, r0.Counters.DRAMRead)
	}
}

func TestMI250XFasterThanV100ForStreaming(t *testing.T) {
	// Paper Fig 9: the MI250X node has ~3.1x the V100 node's achieved
	// bandwidth, so memory-bound kernels run proportionally faster.
	mix := streamMix()
	launch := Launch{Items: 32_000_000, BlockSize: 256}
	tv := v100().Run(mix, launch).SecondsPerRep
	ta := mi250x().Run(mix, launch).SecondsPerRep
	if ta >= tv {
		t.Errorf("MI250X time %v !< V100 time %v", ta, tv)
	}
	speedup := tv / ta
	if speedup < 1.5 || speedup > 6 {
		t.Errorf("MI250X/V100 stream speedup = %.2f, want within [1.5, 6]", speedup)
	}
}

func TestAtomicHotspotSerializes(t *testing.T) {
	d := v100()
	atomicMix := kernels.Mix{
		Flops: 2, Loads: 0, Stores: 0, Atomics: 1,
		Pattern: kernels.AccessUnit, WorkingSetBytes: 8,
	}
	r := d.Run(atomicMix, Launch{Items: 1 << 22, BlockSize: 256})
	if r.Bottleneck != "atomic" {
		t.Errorf("single-address atomic kernel bottleneck = %s, want atomic", r.Bottleneck)
	}
	spread := atomicMix
	spread.WorkingSetBytes = 64e6
	rs := d.Run(spread, Launch{Items: 1 << 22, BlockSize: 256})
	if rs.SecondsPerRep >= r.SecondsPerRep {
		t.Error("spread atomics must be faster than a single-address hotspot")
	}
}

func TestLaunchOverheadDominatesManySmallLaunches(t *testing.T) {
	d := v100()
	mix := streamMix()
	mix.LaunchesPerRep = 200 // many tiny pack kernels, HALO_PACKING-like
	small := d.Run(mix, Launch{Items: 1 << 12, BlockSize: 256})
	if small.Bottleneck != "launch" {
		t.Errorf("many-launch small kernel bottleneck = %s, want launch", small.Bottleneck)
	}
	fused := streamMix()
	fused.LaunchesPerRep = 2 // workgroup-fused equivalent
	rf := d.Run(fused, Launch{Items: 1 << 12, BlockSize: 256})
	if rf.SecondsPerRep >= small.SecondsPerRep {
		t.Error("fused launches must beat many small launches")
	}
}

func TestOccupancyTuningShape(t *testing.T) {
	d := v100()
	// Issue-bound mix (integer-heavy) so occupancy, not the FP ceiling,
	// limits throughput.
	mix := kernels.Mix{Flops: 2, IntOps: 60, Loads: 2, Stores: 1, Reuse: 0.8,
		Pattern: kernels.AccessUnit, WorkingSetBytes: 8e6}
	t32 := d.Run(mix, Launch{Items: 1 << 24, BlockSize: 32}).SecondsPerRep
	t256 := d.Run(mix, Launch{Items: 1 << 24, BlockSize: 256}).SecondsPerRep
	if t256 >= t32 {
		t.Errorf("block 256 (%v) must beat block 32 (%v) for compute kernels", t256, t32)
	}
}

func TestRooflinePoints(t *testing.T) {
	d := v100()
	r := d.Run(streamMix(), Launch{Items: 1 << 22, BlockSize: 256})
	pts := d.Roofline(r)
	if len(pts) != 3 {
		t.Fatalf("got %d roofline points, want 3 (L1, L2, HBM)", len(pts))
	}
	levels := map[string]RooflinePoint{}
	for _, p := range pts {
		if p.Intensity <= 0 || p.GIPS <= 0 {
			t.Errorf("point %+v not positive", p)
		}
		levels[p.Level] = p
	}
	// Fewer transactions at lower levels => higher intensity.
	if !(levels["HBM"].Intensity >= levels["L2"].Intensity &&
		levels["L2"].Intensity >= levels["L1"].Intensity) {
		t.Errorf("intensity must grow down-hierarchy: %+v", levels)
	}
	// No kernel exceeds the device ceilings.
	maxGIPS, gtxns := d.Ceilings()
	for _, p := range pts {
		if p.GIPS > maxGIPS*1.001 {
			t.Errorf("%s GIPS %.1f exceeds ceiling %.1f", p.Level, p.GIPS, maxGIPS)
		}
		if bw := gtxns[p.Level]; p.GIPS > p.Intensity*bw*1.001 {
			t.Errorf("%s point above bandwidth diagonal", p.Level)
		}
	}
}

func TestCountersMapMatchesTableIV(t *testing.T) {
	names := MetricNames()
	if len(names) != 12 {
		t.Fatalf("Table IV metric list has %d entries, want 12", len(names))
	}
	r := v100().Run(streamMix(), Launch{Items: 1 << 20, BlockSize: 256})
	m := r.Counters.Map()
	for _, n := range names {
		if _, ok := m[n]; !ok {
			t.Errorf("counter map missing Table IV metric %s", n)
		}
	}
	if got := r.Counters.WarpInst(32) * 32; math.Abs(got-r.Counters.ThreadInstExecuted) > 1 {
		t.Error("WarpInst inconsistent with thread instructions")
	}
}
