// Package gpusim implements an analytical GPU performance model standing in
// for the NVIDIA V100 and AMD MI250X hardware the paper measures with
// Nsight Compute. Given a kernel's instruction-mix descriptor and a launch
// configuration, it models warp scheduling, memory-access coalescing into
// sector transactions through the L1/L2/DRAM hierarchy, atomic
// serialization, and per-launch overhead, producing:
//
//   - the NCU counter set of Table IV (thread instructions, L1/L2 sector
//     transactions by operation, DRAM sectors, kernel time), and
//   - the Instruction Roofline coordinates of Ding & Williams (warp GIPS
//     versus warp instructions per transaction, per cache level).
package gpusim

import (
	"fmt"
	"math"

	"rajaperf/internal/kernels"
	"rajaperf/internal/machine"
)

// Launch describes one kernel launch on the device.
type Launch struct {
	Items     int // work-items (one per problem element)
	BlockSize int // threads per block (tuning)
}

// Counters is the Nsight-Compute-style counter set of Table IV, summed
// over a rep on one GPU (or GCD).
type Counters struct {
	// Thread-based.
	ThreadInstExecuted float64 // sm__sass_thread_inst_executed.sum

	// Warp-based: L1 (L1TEX) sector transactions by operation.
	L1GlobalLoad  float64 // l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum
	L1GlobalStore float64 // l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum
	L1LocalLoad   float64 // l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum
	L1LocalStore  float64 // l1tex__t_requests_pipe_lsu_mem_local_op_st.sum

	// L2 (LTS) sector transactions by operation.
	L2Read   float64 // lts__t_sectors_op_read.sum
	L2Write  float64 // lts__t_sectors_op_write.sum
	L2Atomic float64 // lts__t_sectors_op_atom.sum
	L2Red    float64 // lts__t_sectors_op_red.sum

	// DRAM sectors.
	DRAMRead  float64 // dram__sectors_read.sum
	DRAMWrite float64 // dram__sectors_write.sum

	// Kernel-based.
	TimeSec float64 // time (gpu)
}

// WarpInst returns the warp-level instruction count for a device with the
// given warp size.
func (c Counters) WarpInst(warpSize int) float64 {
	return c.ThreadInstExecuted / float64(warpSize)
}

// L1Transactions returns total L1 sector transactions.
func (c Counters) L1Transactions() float64 {
	return c.L1GlobalLoad + c.L1GlobalStore + c.L1LocalLoad + c.L1LocalStore
}

// L2Transactions returns total L2 sector transactions.
func (c Counters) L2Transactions() float64 {
	return c.L2Read + c.L2Write + c.L2Atomic + c.L2Red
}

// DRAMTransactions returns total DRAM sector transactions.
func (c Counters) DRAMTransactions() float64 { return c.DRAMRead + c.DRAMWrite }

// Map returns the counters keyed by their Nsight Compute metric names
// (Table IV), for recording into Caliper profiles.
func (c Counters) Map() map[string]float64 {
	return map[string]float64{
		"sm__sass_thread_inst_executed.sum":              c.ThreadInstExecuted,
		"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum": c.L1GlobalLoad,
		"l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum": c.L1GlobalStore,
		"l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum":  c.L1LocalLoad,
		"l1tex__t_requests_pipe_lsu_mem_local_op_st.sum": c.L1LocalStore,
		"lts__t_sectors_op_read.sum":                     c.L2Read,
		"lts__t_sectors_op_write.sum":                    c.L2Write,
		"lts__t_sectors_op_atom.sum":                     c.L2Atomic,
		"lts__t_sectors_op_red.sum":                      c.L2Red,
		"dram__sectors_read.sum":                         c.DRAMRead,
		"dram__sectors_write.sum":                        c.DRAMWrite,
		"gpu__time_duration.sum":                         c.TimeSec,
	}
}

// MetricNames returns the Table IV metric list in row order.
func MetricNames() []string {
	return []string{
		"sm__sass_thread_inst_executed.sum",
		"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum",
		"l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum",
		"l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum",
		"l1tex__t_requests_pipe_lsu_mem_local_op_st.sum",
		"lts__t_sectors_op_read.sum",
		"lts__t_sectors_op_write.sum",
		"lts__t_sectors_op_atom.sum",
		"lts__t_sectors_op_red.sum",
		"dram__sectors_read.sum",
		"dram__sectors_write.sum",
		"gpu__time_duration.sum",
	}
}

// Result is one modeled rep of a kernel on one device.
type Result struct {
	Counters      Counters
	SecondsPerRep float64 // node-level seconds per rep (all units, + launch)
	Occupancy     float64 // achieved occupancy fraction
	Bottleneck    string  // "issue", "l1", "l2", "dram", "atomic", "launch"
}

// Device models one GPU (V100-like) or one GCD (MI250X-like).
type Device struct {
	mach *machine.Machine
}

// NewDevice returns a device model for m, which must be a GPU machine.
func NewDevice(m *machine.Machine) (*Device, error) {
	if m.Kind != machine.GPU || m.GPU == nil {
		return nil, fmt.Errorf("gpusim: machine %s is not a GPU system", m)
	}
	return &Device{mach: m}, nil
}

// Machine returns the underlying machine model.
func (d *Device) Machine() *machine.Machine { return d.mach }

// sectorsPerWarpAccess returns how many 32-byte sectors one warp-wide
// 8-byte access generates under the given pattern. A fully coalesced warp
// of 32 threads touching consecutive doubles covers 256 bytes = 8 sectors;
// a random warp touches one sector per thread.
func (d *Device) sectorsPerWarpAccess(p kernels.AccessPattern) float64 {
	g := d.mach.GPU
	coalesced := float64(g.WarpSize) * 8 / float64(g.SectorBytes)
	switch p {
	case kernels.AccessUnit:
		return coalesced
	case kernels.AccessStrided:
		return coalesced * 2.5
	case kernels.AccessIndirect:
		return coalesced * 3.2
	case kernels.AccessRandom:
		return float64(g.WarpSize)
	default:
		return coalesced
	}
}

// hitRates estimates L1 and L2 hit fractions from the working set and the
// kernel's temporal reuse.
func (d *Device) hitRates(mix kernels.Mix) (l1, l2 float64) {
	g := d.mach.GPU
	l1Bytes := float64(g.L1KBPerSM*g.SMs) * 1024
	l2Bytes := float64(g.L2MB) * 1024 * 1024
	ws := mix.WorkingSetBytes
	if ws <= 0 {
		ws = 1
	}
	// Streaming data has no temporal locality beyond the intra-warp
	// spatial reuse already captured by sectoring. The Reuse field
	// encodes achieved blocking locality (tiles fit in shared/L1
	// regardless of total footprint), so it applies unscaled; residency
	// of the whole working set additionally raises hits.
	l1 = 0.05 + 0.90*mix.Reuse + 0.50*(1-mix.Reuse)*math.Min(1, l1Bytes/ws)
	l2 = 0.05 + 0.85*math.Min(1, l2Bytes/ws) + 0.50*mix.Reuse
	if l1 > 0.97 {
		l1 = 0.97
	}
	if l2 > 0.95 {
		l2 = 0.95
	}
	if mix.Pattern == kernels.AccessRandom {
		l1 *= 0.3
		l2 *= 0.5
	}
	return l1, l2
}

// Run models one rep consisting of mix.LaunchesPerRep launches of the
// given launch shape, with the node's work decomposed across its
// UnitsPerNode devices (one rank per device, as in Table III).
func (d *Device) Run(mix kernels.Mix, launch Launch) Result {
	g := d.mach.GPU
	itemsPerUnit := float64(launch.Items) / float64(d.mach.UnitsPerNode)
	if itemsPerUnit < 1 {
		itemsPerUnit = 1
	}
	warps := itemsPerUnit / float64(g.WarpSize)

	// Thread instructions: arithmetic + memory + control, inflated by
	// divergence (divergent warps execute both paths).
	instPerItem := mix.Flops + mix.Loads + mix.Stores + mix.IntOps +
		mix.Branches + 2 + 6*mix.Atomics
	divFactor := 1 + mix.Divergence
	threadInst := instPerItem * itemsPerUnit * divFactor
	warpInst := threadInst / float64(g.WarpSize)

	// Memory transactions per level.
	spw := d.sectorsPerWarpAccess(mix.Pattern)
	l1Load := mix.Loads * warps * spw
	l1Store := mix.Stores * warps * spw
	l1Hit, l2Hit := d.hitRates(mix)
	l2Read := l1Load * (1 - l1Hit)
	l2Write := l1Store                                  // writes are write-through to L2 on these parts
	l2Atom := mix.Atomics * warps * float64(g.WarpSize) // uncoalesced RMW
	dramRead := l2Read * (1 - l2Hit)
	dramWrite := l2Write * (1 - l2Hit*0.6)

	// Occupancy from block size: very small blocks underfill SMs; very
	// large blocks lose scheduling slack.
	occ := occupancy(launch.BlockSize, g)

	// Device utilization: kernels whose parallel loop exposes fewer
	// threads than the device needs to saturate (row-parallel matvecs)
	// run at a fraction of every throughput ceiling. Latency hiding
	// needs ~8 resident warps per SM for compute, ~6 for bandwidth.
	threadsPerUnit := itemsPerUnit
	if mix.ParallelWork > 0 {
		threadsPerUnit = mix.ParallelWork
	}
	availWarps := threadsPerUnit / float64(g.WarpSize)
	utilComp := math.Min(1, availWarps/(float64(g.SMs)*8))
	utilMem := math.Min(1, availWarps/(float64(g.SMs)*6))

	// Time per launch: the binding resource. The FP ceiling is
	// calibrated to the achieved fraction of Table II's probe; the DRAM
	// ceiling to the achieved TRIAD bandwidth.
	issueTime := warpInst / (g.MaxWarpGIPS * 1e9 * occ * utilComp)
	// The calibrated achieved fraction comes from the tuned GEMM probe;
	// generic kernels reach slightly under half of it unless they
	// declare their own efficiency (the probe itself declares 1).
	fpEff := d.mach.AchievedFlopsFrac * 0.45
	if mix.GPUFlopEff > 0 {
		fpEff = d.mach.AchievedFlopsFrac * mix.GPUFlopEff
		if fpEff > 0.8 {
			fpEff = 0.8 // never beyond ~80% of theoretical peak
		}
	}
	fpTime := mix.Flops * itemsPerUnit / (d.mach.PeakTFLOPSUnit * 1e12 * fpEff * utilComp)
	l1Time := (l1Load + l1Store) / (g.L1GTXNs * 1e9)
	l2Time := (l2Read + l2Write + l2Atom) / (g.L2GTXNs * 1e9)
	dramSectorsPerSec := d.mach.PeakBWTBsUnit * 1e12 * d.mach.AchievedBWFrac /
		float64(g.SectorBytes)
	if ceil := g.DRAMGTXNs * 1e9; dramSectorsPerSec > ceil {
		dramSectorsPerSec = ceil // stay on or below the roofline diagonal
	}
	// Bandwidth also needs resident warps for latency hiding: low
	// occupancy tunings lose a slice of achievable DRAM throughput.
	dramTime := (dramRead + dramWrite) / (dramSectorsPerSec * utilMem * (0.55 + 0.45*occ))
	atomTime := 0.0
	if mix.Atomics > 0 {
		conflictFactor := 1.0
		if mix.Pattern == kernels.AccessUnit && mix.WorkingSetBytes < 1024 {
			// All threads hammer a handful of addresses.
			conflictFactor = 24
		}
		atomTime = mix.Atomics * itemsPerUnit * conflictFactor /
			(float64(g.SMs) * g.AtomicThroughpt * g.ClockGHz * 1e9)
	}

	launches := mix.LaunchesPerRep
	if launches <= 0 {
		launches = 1
	}
	kernelTime := math.Max(math.Max(issueTime, fpTime),
		math.Max(math.Max(l1Time, l2Time), math.Max(dramTime, atomTime)))
	// Work splits across launches; overhead multiplies with them.
	launchOverhead := g.LaunchOverhead * 1e-6 * launches
	total := kernelTime + launchOverhead

	bottleneck := "issue"
	best := issueTime
	for _, c := range []struct {
		n string
		t float64
	}{{"fp", fpTime}, {"l1", l1Time}, {"l2", l2Time}, {"dram", dramTime}, {"atomic", atomTime}} {
		if c.t > best {
			best, bottleneck = c.t, c.n
		}
	}
	if launchOverhead > best {
		bottleneck = "launch"
	}

	if mix.MPIFraction > 0 && mix.MPIFraction < 1 {
		total = total / (1 - mix.MPIFraction)
	}

	return Result{
		Counters: Counters{
			ThreadInstExecuted: threadInst,
			L1GlobalLoad:       l1Load,
			L1GlobalStore:      l1Store,
			L2Read:             l2Read,
			L2Write:            l2Write,
			L2Atomic:           l2Atom,
			DRAMRead:           dramRead,
			DRAMWrite:          dramWrite,
			TimeSec:            total,
		},
		SecondsPerRep: total,
		Occupancy:     occ,
		Bottleneck:    bottleneck,
	}
}

func occupancy(block int, g *machine.GPUParams) float64 {
	if block <= 0 {
		block = 256
	}
	switch {
	case block < 64:
		return 0.45
	case block < 128:
		return 0.80
	case block < 256:
		return 0.95
	case block <= 512:
		return 1.0
	case block <= 1024:
		return 0.90
	default:
		return 0.60
	}
}

// RooflinePoint is one kernel's coordinates on the instruction roofline of
// one cache level (Ding & Williams): x = warp instructions per transaction,
// y = warp GIPS.
type RooflinePoint struct {
	Level     string  // "L1", "L2", or "HBM"
	Intensity float64 // warp instructions per transaction
	GIPS      float64 // 1e9 warp instructions per second
}

// Roofline converts a modeled result into its three roofline points.
func (d *Device) Roofline(r Result) []RooflinePoint {
	w := r.Counters.WarpInst(d.mach.GPU.WarpSize)
	t := r.Counters.TimeSec
	if t <= 0 {
		t = 1e-12
	}
	gips := w / t / 1e9
	pts := make([]RooflinePoint, 0, 3)
	for _, lv := range []struct {
		name string
		txn  float64
	}{
		{"L1", r.Counters.L1Transactions()},
		{"L2", r.Counters.L2Transactions()},
		{"HBM", r.Counters.DRAMTransactions()},
	} {
		if lv.txn <= 0 {
			lv.txn = 1
		}
		pts = append(pts, RooflinePoint{Level: lv.name, Intensity: w / lv.txn, GIPS: gips})
	}
	return pts
}

// Ceilings returns the device's roofline ceilings: the peak warp GIPS and
// the per-level transaction bandwidth diagonals in GTXN/s.
func (d *Device) Ceilings() (maxGIPS float64, gtxns map[string]float64) {
	g := d.mach.GPU
	return g.MaxWarpGIPS, map[string]float64{
		"L1":  g.L1GTXNs,
		"L2":  g.L2GTXNs,
		"HBM": g.DRAMGTXNs,
	}
}
