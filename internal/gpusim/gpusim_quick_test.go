package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"rajaperf/internal/kernels"
)

func quickMix(a, b, c, d uint8) kernels.Mix {
	return kernels.Mix{
		Flops:           float64(a % 64),
		Loads:           float64(b%16) + 1,
		Stores:          float64(c % 8),
		IntOps:          float64(d % 8),
		Branches:        float64(a % 3),
		Atomics:         float64(b % 2),
		Pattern:         kernels.AccessPattern(c % 4),
		Reuse:           float64(d%10) / 10,
		WorkingSetBytes: math.Pow(10, 4+float64(a%5)),
		Divergence:      float64(b%5) / 10,
	}
}

// Property: all counters are nonnegative and finite; time is positive.
func TestQuickCountersValid(t *testing.T) {
	d := v100()
	f := func(a, b, c, dd uint8) bool {
		r := d.Run(quickMix(a, b, c, dd), Launch{Items: 1 << 20, BlockSize: 256})
		cs := r.Counters
		for _, v := range []float64{
			cs.ThreadInstExecuted, cs.L1GlobalLoad, cs.L1GlobalStore,
			cs.L2Read, cs.L2Write, cs.L2Atomic, cs.DRAMRead, cs.DRAMWrite,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return r.SecondsPerRep > 0 && r.Occupancy > 0 && r.Occupancy <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: counters scale linearly with item count; time is monotone.
func TestQuickItemScaling(t *testing.T) {
	d := v100()
	f := func(a, b, c, dd uint8) bool {
		mix := quickMix(a, b, c, dd)
		r1 := d.Run(mix, Launch{Items: 1 << 20, BlockSize: 256})
		r2 := d.Run(mix, Launch{Items: 1 << 22, BlockSize: 256})
		instRatio := r2.Counters.ThreadInstExecuted / r1.Counters.ThreadInstExecuted
		if math.Abs(instRatio-4) > 0.01 {
			return false
		}
		return r2.SecondsPerRep >= r1.SecondsPerRep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the memory hierarchy never amplifies read traffic downward.
func TestQuickHierarchyConservation(t *testing.T) {
	d := mi250x()
	f := func(a, b, c, dd uint8) bool {
		r := d.Run(quickMix(a, b, c, dd), Launch{Items: 1 << 21, BlockSize: 256})
		cs := r.Counters
		return cs.L2Read <= cs.L1GlobalLoad*(1+1e-9) &&
			cs.DRAMRead <= cs.L2Read*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: divergence never speeds a kernel up.
func TestQuickDivergencePenalty(t *testing.T) {
	d := v100()
	f := func(a, b, c, dd uint8) bool {
		mix := quickMix(a, b, c, dd)
		mix.Divergence = 0
		r0 := d.Run(mix, Launch{Items: 1 << 21, BlockSize: 256})
		mix.Divergence = 0.9
		r1 := d.Run(mix, Launch{Items: 1 << 21, BlockSize: 256})
		return r1.SecondsPerRep >= r0.SecondsPerRep*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
