package rajaperf

import (
	"testing"

	"rajaperf/internal/kernels"
)

// BenchmarkPortability measures the RAJA-vs-Base abstraction gap the
// monomorphized execution core exists to close. For each rewired kernel
// it times the hand-written Base_Seq loop, the classic closure-dispatch
// RAJA_Seq path, and the monomorphized RAJA_Seq path, under one
// sub-benchmark namespace that cmd/benchgate's portability mode parses:
//
//	go test -bench BenchmarkPortability -run xxx > bench_portability.txt
//	go run ./cmd/benchgate -portability bench_portability.txt \
//	    -portability-baseline testdata/portability_baseline.json
//
// Seq variants are the reliable portability probe on small CI hosts:
// parallel back-ends degenerate to one lane there and measure dispatch
// noise, not abstraction overhead.
func BenchmarkPortability(b *testing.B) {
	const size = 1 << 20
	names := []string{
		"Stream_TRIAD", "Stream_ADD", "Stream_COPY", "Stream_MUL",
		"Stream_DOT", "Basic_DAXPY", "Lcals_HYDRO_1D", "Lcals_EOS",
	}
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			k, err := kernels.New(name)
			if err != nil {
				b.Fatal(err)
			}
			if !k.Info().Mono {
				b.Fatalf("%s is not rewired to monomorphized dispatch", name)
			}
			rp := kernels.RunParams{Size: size, Reps: 1}
			k.SetUp(rp)
			defer k.TearDown()

			runs := []struct {
				label    string
				v        kernels.VariantID
				dispatch kernels.DispatchMode
			}{
				{"Base_Seq", kernels.BaseSeq, kernels.DispatchMono},
				{"RAJA_Seq_closure", kernels.RAJASeq, kernels.DispatchClosure},
				{"RAJA_Seq_mono", kernels.RAJASeq, kernels.DispatchMono},
			}
			for _, r := range runs {
				vrp := rp
				vrp.Dispatch = r.dispatch
				b.Run(r.label, func(b *testing.B) {
					m := k.Metrics()
					b.SetBytes(int64(m.BytesRead + m.BytesWritten))
					if err := k.Run(r.v, vrp); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := k.Run(r.v, vrp); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}
